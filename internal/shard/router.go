// Package shard implements a sharded manager control plane: N independent
// core.Manager event loops ("shards") running in one process behind a
// Router that preserves the single-manager API. On a many-core node the
// single event loop of internal/core serializes all scheduling; sharding
// multiplies dispatch throughput by running several loops in parallel
// while keeping each loop's no-lock invariant intact.
//
// The router's job is to make N loops look like one manager:
//
//   - Workflow-affinity routing. Tasks coupled through cluster-resident
//     files (Temp or Handle inputs, any output) form a workflow component
//     that is pinned to one shard, chosen by consistent hashing, so a
//     DAG's dependency graph, replica table, and placement state stay
//     shard-local and no cross-shard coordination is ever needed on the
//     scheduling hot path. Unrelated tasks round-robin across shards.
//   - Task-ID virtualization. The router assigns globally unique task IDs
//     and remaps each shard's local IDs in results, so applications see
//     one ID space.
//   - Worker leasing. Arriving workers are partitioned across shards; a
//     queue-depth-aware balancer migrates idle shards' workers to
//     backlogged ones through the worker's redirect/reconnect path
//     (core.Manager.RedirectWorker), cache intact.
//   - Per-tenant fair share. With a quota configured, each tenant may
//     occupy at most TenantQuota in-flight submissions across the cluster;
//     the excess waits in a router-side hold queue, so one saturating
//     tenant cannot delay another tenant's dispatch beyond its quota.
//
// All shards share one files.Registry (declarations are global) and one
// metrics.Registry (one /metrics surface); each shard keeps a private
// trace log so per-shard traces remain exactly what a single manager
// would have produced.
package shard

import (
	"context"
	"fmt"
	"log"
	"sort"
	"strconv"
	"sync"
	"time"

	"taskvine/internal/catalog"
	"taskvine/internal/core"
	"taskvine/internal/files"
	"taskvine/internal/metrics"
	"taskvine/internal/resources"
	"taskvine/internal/taskspec"
	"taskvine/internal/trace"
)

// Config parameterizes a Router.
type Config struct {
	// Shards is the number of manager event loops; default 1.
	Shards int
	// Manager is the template configuration applied to every shard.
	// ListenAddr names shard 0's listener; the rest take ephemeral
	// loopback ports (discover them with Addrs or the catalog). A non-nil
	// Files registry is shared as-is; otherwise the router allocates one
	// registry shared by all shards.
	Manager core.Config
	// TenantQuota bounds each tenant's in-flight submissions; 0 disables
	// fair-share holds. Function invocations bypass the hold queue (they
	// ride the latency-sensitive fast path) but tasks submitted through
	// Submit are held once the tenant's quota is exhausted.
	TenantQuota int
	// VirtualNodes is the consistent-hash ring's points per shard;
	// default 64.
	VirtualNodes int
	// LeaseInterval is the worker-lease balancer's probe period; default
	// 500ms, negative disables balancing.
	LeaseInterval time.Duration
	// LeaseThreshold is the minimum queue depth a backlogged shard must
	// show before an idle shard's worker is leased to it; default 4.
	LeaseThreshold int
	// Name and CatalogAddr advertise each shard to a catalog server as
	// "<name>/shard<i>" when CatalogAddr is set.
	Name        string
	CatalogAddr string
	// Logger receives router operational messages; nil silences them.
	Logger *log.Logger
}

// route is the router's record of one global task ID.
type route struct {
	shard  int
	local  int // shard-local task ID; -1 while held or mid-submission
	tenant string
	// counted reports whether the task occupies a tenant quota slot.
	counted bool
}

// held is a quota-held submission waiting for its tenant's slot.
type held struct {
	gid   int
	spec  *taskspec.Spec
	shard int
}

type tenantState struct {
	inflight int
	held     []held
}

type orphanKey struct {
	shard int
	local int
}

// Router runs N manager shards behind the single-manager API.
type Router struct {
	cfg    Config
	shards []*core.Manager
	reg    *files.Registry
	vm     *metrics.VineMetrics
	advs   []*catalog.Advertiser

	// mu guards the routing state below. It is never held across a call
	// into a shard, so shard event loops can never deadlock against it.
	mu       sync.Mutex
	aff      *affinity // guarded by mu
	hashRing *ring     // guarded by mu; built lazily on first routed key
	rr       int       // guarded by mu; round-robin cursor for unaffiliated work
	next int            // guarded by mu; last global task ID handed out
	rts  map[int]route  // guarded by mu; global ID -> route
	gids []map[int]int  // guarded by mu; per-shard local ID -> global ID
	// orphans parks results whose submission bookkeeping has not caught
	// up yet (the shard answered before Submit returned). guarded by mu
	orphans     map[orphanKey]*core.Result
	tenants     map[string]*tenantState // guarded by mu
	outstanding int                     // guarded by mu; unfinished global tasks
	closed      bool                    // guarded by mu

	// Result plumbing mirrors core.Manager: pumps append under resMu and
	// signal; deliverLoop feeds the buffered channel Wait reads, so a slow
	// application never blocks a pump (and thus never delays quota
	// release for other tenants).
	results chan *core.Result
	resMu   sync.Mutex
	resQ    []*core.Result // guarded by resMu
	resSig  chan struct{}

	done     chan struct{}
	pumpCtx  context.Context
	pumpStop context.CancelFunc
	bg       sync.WaitGroup
	start    time.Time
}

// New starts a router with cfg.Shards manager event loops.
func New(cfg Config) (*Router, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	if cfg.LeaseInterval == 0 {
		cfg.LeaseInterval = 500 * time.Millisecond
	}
	if cfg.LeaseThreshold <= 0 {
		cfg.LeaseThreshold = 4
	}
	if (cfg.Manager.DefaultTaskResources == resources.R{}) {
		cfg.Manager.DefaultTaskResources = resources.R{Cores: 1}
	}
	reg := cfg.Manager.Files
	if reg == nil {
		reg = files.NewRegistry(cfg.Manager.Head)
	}
	mreg := cfg.Manager.Metrics
	if mreg == nil {
		mreg = metrics.NewRegistry()
	}
	pumpCtx, pumpStop := context.WithCancel(context.Background())
	r := &Router{
		cfg:      cfg,
		reg:      reg,
		vm:       metrics.ForRegistry(mreg),
		aff:      newAffinity(),
		rts:      make(map[int]route),
		orphans:  make(map[orphanKey]*core.Result),
		tenants:  make(map[string]*tenantState),
		results:  make(chan *core.Result, 4096),
		resSig:   make(chan struct{}, 1),
		done:     make(chan struct{}),
		pumpCtx:  pumpCtx,
		pumpStop: pumpStop,
		start:    time.Now(),
	}
	for i := 0; i < cfg.Shards; i++ {
		sc := cfg.Manager
		sc.Files = reg
		sc.Metrics = mreg
		// Each shard keeps a private trace log: a shard's trace is exactly
		// what a single manager scheduling the same workload would log,
		// which the conformance tests rely on. The metrics bridge folds
		// every shard's events into the one shared registry.
		sc.Trace = nil
		if i > 0 {
			sc.ListenAddr = "127.0.0.1:0"
			if sc.TraceFile != "" {
				sc.TraceFile = fmt.Sprintf("%s.shard%d", sc.TraceFile, i)
			}
		}
		m, err := core.NewManager(sc)
		if err != nil {
			for _, prev := range r.shards {
				prev.Close()
			}
			pumpStop()
			return nil, fmt.Errorf("shard: starting shard %d: %w", i, err)
		}
		r.shards = append(r.shards, m)
		r.gids = append(r.gids, make(map[int]int))
	}
	for i := range r.shards {
		i := i
		r.bg.Add(1)
		go r.pump(i)
	}
	r.bg.Add(1)
	go r.deliverLoop()
	if cfg.LeaseInterval > 0 && cfg.Shards > 1 {
		r.bg.Add(1)
		go r.balanceLoop()
	}
	if cfg.CatalogAddr != "" {
		name := cfg.Name
		if name == "" {
			name = "taskvine"
		}
		for i, sh := range r.shards {
			sh := sh
			r.advs = append(r.advs, catalog.NewAdvertiser(
				cfg.CatalogAddr, fmt.Sprintf("%s/shard%d", name, i), 0,
				func() catalog.Entry {
					s := sh.Status()
					return catalog.Entry{
						Addr:         s.Addr,
						Workers:      len(s.Workers),
						TasksWaiting: s.TasksWaiting,
						TasksRunning: s.TasksRunning,
					}
				}))
		}
	}
	return r, nil
}

func (r *Router) logf(format string, args ...any) {
	if r.cfg.Logger != nil {
		r.cfg.Logger.Printf("shard: "+format, args...)
	}
}

// Shards returns the number of shards.
func (r *Router) Shards() int { return len(r.shards) }

// Shard returns the i-th shard's manager, for tests and per-shard
// introspection.
func (r *Router) Shard(i int) *core.Manager { return r.shards[i] }

// Addr returns shard 0's worker-facing address. Use Addrs to spread
// workers across all shards.
func (r *Router) Addr() string { return r.shards[0].Addr() }

// Addrs returns every shard's worker-facing address in shard order.
// Launchers should spread workers round-robin across these; the lease
// balancer corrects any imbalance afterwards.
func (r *Router) Addrs() []string {
	out := make([]string, len(r.shards))
	for i, sh := range r.shards {
		out[i] = sh.Addr()
	}
	return out
}

// Files returns the registry shared by all shards.
func (r *Router) Files() *files.Registry { return r.reg }

// Trace returns shard 0's execution log. Each shard keeps its own log;
// reach the others through Shard(i).Trace().
func (r *Router) Trace() *trace.Log { return r.shards[0].Trace() }

// Metrics returns the instrument registry shared by all shards.
func (r *Router) Metrics() *metrics.Registry { return r.shards[0].Metrics() }

func shardLabel(i int) string { return strconv.Itoa(i) }

// routeKeys collects the spec's affinity keys: the explicit workflow
// label, cluster-resident inputs (Temp, Handle), and every output. Files
// that can be materialized anywhere (Local, Buffer, URL, MiniTask inputs)
// impose no affinity.
func (r *Router) routeKeys(spec *taskspec.Spec) []string {
	var keys []string
	if spec.Workflow != "" {
		keys = append(keys, "workflow:"+spec.Workflow)
	}
	for _, mt := range spec.Inputs {
		if f, ok := r.reg.Lookup(mt.FileID); ok && (f.Type == files.Temp || f.Type == files.Handle) {
			keys = append(keys, mt.FileID)
		}
	}
	for _, mt := range spec.Outputs {
		keys = append(keys, mt.FileID)
	}
	return keys
}

// routeLocked picks the spec's shard under r.mu: union its affinity keys,
// follow an existing component binding, or bind a fresh component via the
// consistent-hash ring. Key-less tasks round-robin.
func (r *Router) routeLocked(spec *taskspec.Spec) (int, error) {
	keys := r.routeKeys(spec)
	if len(keys) == 0 {
		s := r.rr % len(r.shards)
		r.rr++
		return s, nil
	}
	anchor := keys[0]
	for _, k := range keys[1:] {
		if err := r.aff.union(anchor, k); err != nil {
			return 0, err
		}
	}
	if s, ok := r.aff.shardOf(anchor); ok {
		return s, nil
	}
	s := r.ringLocked().lookup(anchor)
	r.aff.bind(anchor, s)
	return s, nil
}

// ringLocked returns the ring for the current shard count, building it on
// first use; the count is fixed per router. Callers hold r.mu.
func (r *Router) ringLocked() *ring {
	if r.hashRing == nil {
		r.hashRing = newRing(len(r.shards), r.cfg.VirtualNodes)
	}
	return r.hashRing
}

// Submit queues a task and returns its global ID. The shard is chosen by
// workflow affinity; a task joining two workflows already bound to
// different shards is refused. When the tenant's quota is exhausted the
// task is held at the router and submitted as the tenant's earlier tasks
// finish.
func (r *Router) Submit(spec *taskspec.Spec) (int, error) {
	// Validate eagerly, exactly as core.Submit would, so quota-held
	// submissions report errors synchronously; the clone is the router's
	// to hold and eventually the shard's to own.
	clone := spec.Clone()
	clone.Resources = clone.Resources.Defaulted(r.cfg.Manager.DefaultTaskResources)
	for _, mt := range append(append([]taskspec.Mount(nil), clone.Inputs...), clone.Outputs...) {
		if _, ok := r.reg.Lookup(mt.FileID); !ok {
			return 0, fmt.Errorf("core: task references undeclared file %s", mt.FileID)
		}
	}
	if err := clone.Validate(); err != nil {
		return 0, err
	}

	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return 0, fmt.Errorf("shard: router is shutting down")
	}
	s, err := r.routeLocked(clone)
	if err != nil {
		r.mu.Unlock()
		return 0, err
	}
	r.next++
	gid := r.next
	ten := r.tenantLocked(clone.Tenant)
	r.outstanding++
	if r.cfg.TenantQuota > 0 && ten.inflight >= r.cfg.TenantQuota {
		ten.held = append(ten.held, held{gid: gid, spec: clone, shard: s})
		r.rts[gid] = route{shard: s, local: -1, tenant: clone.Tenant}
		r.mu.Unlock()
		r.vm.ShardQuotaThrottles.Inc()
		return gid, nil
	}
	ten.inflight++
	r.rts[gid] = route{shard: s, local: -1, tenant: clone.Tenant, counted: true}
	r.mu.Unlock()

	if err := r.submitTo(gid, s, clone); err != nil {
		r.mu.Lock()
		delete(r.rts, gid)
		r.outstanding--
		ten.inflight--
		r.mu.Unlock()
		return 0, err
	}
	return gid, nil
}

// submitTo hands a routed spec to its shard and records the local-ID
// mapping, delivering any result that raced ahead of the bookkeeping.
func (r *Router) submitTo(gid, s int, spec *taskspec.Spec) error {
	local, err := r.shards[s].Submit(spec)
	if err != nil {
		return err
	}
	r.recordLocal(gid, s, local)
	return nil
}

// recordLocal binds a shard-local task ID to its global ID and flushes a
// parked early result, if the shard answered before we got here.
func (r *Router) recordLocal(gid, s, local int) {
	r.mu.Lock()
	rt := r.rts[gid]
	rt.shard, rt.local = s, local
	r.rts[gid] = rt
	r.gids[s][local] = gid
	early := r.orphans[orphanKey{s, local}]
	delete(r.orphans, orphanKey{s, local})
	r.mu.Unlock()
	r.vm.ShardSubmissions.With(shardLabel(s)).Inc()
	if early != nil {
		early.TaskID = gid
		r.finish(gid, s, early)
	}
}

func (r *Router) tenantLocked(name string) *tenantState {
	ten := r.tenants[name]
	if ten == nil {
		ten = &tenantState{}
		r.tenants[name] = ten
	}
	return ten
}

// Invoke routes a serverless function call to a shard round-robin and
// returns its global task ID. Invocations carry no workflow affinity
// (their arguments travel inline) and skip the tenant hold queue to keep
// the fast path fast.
func (r *Router) Invoke(library, function string, args []byte) (int, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return 0, fmt.Errorf("shard: router is shutting down")
	}
	s := r.rr % len(r.shards)
	r.rr++
	r.next++
	gid := r.next
	r.rts[gid] = route{shard: s, local: -1}
	r.outstanding++
	r.mu.Unlock()

	local, err := r.shards[s].Invoke(library, function, args)
	if err != nil {
		r.dropRoute(gid)
		return 0, err
	}
	r.recordLocal(gid, s, local)
	return gid, nil
}

// InvokeResident routes a resident function call; the returned handle is
// bound to the executing shard so chained calls and fetches follow it.
func (r *Router) InvokeResident(library, function string, args []byte) (int, string, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return 0, "", fmt.Errorf("shard: router is shutting down")
	}
	s := r.rr % len(r.shards)
	r.rr++
	r.next++
	gid := r.next
	r.rts[gid] = route{shard: s, local: -1}
	r.outstanding++
	r.mu.Unlock()

	local, hid, err := r.shards[s].InvokeResident(library, function, args)
	if err != nil {
		r.dropRoute(gid)
		return 0, "", err
	}
	r.mu.Lock()
	r.aff.bind(hid, s)
	r.mu.Unlock()
	r.recordLocal(gid, s, local)
	return gid, hid, nil
}

// InvokeChained routes a chained resident call to the shard holding the
// argument handle, binding the new handle to the same component.
func (r *Router) InvokeChained(library, function, handleID string) (int, string, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return 0, "", fmt.Errorf("shard: router is shutting down")
	}
	s, ok := r.aff.shardOf(handleID)
	if !ok {
		// An adopted or externally declared handle: pin its component now.
		s = r.ringLocked().lookup(handleID)
		r.aff.bind(handleID, s)
	}
	r.next++
	gid := r.next
	r.rts[gid] = route{shard: s, local: -1}
	r.outstanding++
	r.mu.Unlock()

	local, hid, err := r.shards[s].InvokeChained(library, function, handleID)
	if err != nil {
		r.dropRoute(gid)
		return 0, "", err
	}
	r.mu.Lock()
	if err := r.aff.union(handleID, hid); err != nil {
		// Cannot happen: hid is fresh and unbound.
		r.logf("handle union: %v", err)
	}
	r.mu.Unlock()
	r.recordLocal(gid, s, local)
	return gid, hid, nil
}

// dropRoute abandons a route whose shard submission failed.
func (r *Router) dropRoute(gid int) {
	r.mu.Lock()
	rt, ok := r.rts[gid]
	if ok {
		delete(r.rts, gid)
		r.outstanding--
		if rt.counted {
			if ten := r.tenants[rt.tenant]; ten != nil {
				ten.inflight--
			}
		}
	}
	r.mu.Unlock()
}

// Cancel aborts a task by global ID. Held tasks finish immediately with a
// cancellation result; submitted tasks are cancelled at their shard.
func (r *Router) Cancel(gid int) error {
	r.mu.Lock()
	rt, ok := r.rts[gid]
	if !ok {
		r.mu.Unlock()
		return fmt.Errorf("core: no cancellable task %d", gid)
	}
	if rt.local < 0 {
		ten := r.tenants[rt.tenant]
		if ten != nil {
			for i, h := range ten.held {
				if h.gid == gid {
					ten.held = append(ten.held[:i], ten.held[i+1:]...)
					r.mu.Unlock()
					r.finish(gid, rt.shard, &core.Result{
						TaskID: gid, OK: false, ExitCode: -1, Error: "cancelled",
					})
					return nil
				}
			}
		}
		r.mu.Unlock()
		return fmt.Errorf("shard: task %d is mid-submission; retry", gid)
	}
	s, local := rt.shard, rt.local
	r.mu.Unlock()
	return r.shards[s].Cancel(local)
}

// Empty reports whether every globally submitted task has completed,
// including tasks still held by tenant quotas.
func (r *Router) Empty() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.outstanding == 0
}

// Wait returns the next completed task result with its global ID.
func (r *Router) Wait(ctx context.Context) (*core.Result, error) {
	select {
	case res := <-r.results:
		return res, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// pump drains one shard's results, remaps their IDs, and feeds the
// router's delivery queue. It is latency-critical in the same way the
// manager event loop is — a blocked pump delays quota release for every
// tenant on its shard — so it is checked by the eventblock analyzer.
func (r *Router) pump(i int) {
	defer r.bg.Done()
	for {
		res, err := r.shards[i].Wait(r.pumpCtx)
		if err != nil {
			return // router shutting down
		}
		r.mu.Lock()
		gid, ok := r.gids[i][res.TaskID]
		if !ok {
			// The shard answered before Submit's bookkeeping finished;
			// park the result for recordLocal to flush.
			r.orphans[orphanKey{i, res.TaskID}] = res
			r.mu.Unlock()
			continue
		}
		r.mu.Unlock()
		res.TaskID = gid
		r.finish(gid, i, res)
	}
}

// finish retires a global task: drops its route, releases its tenant's
// quota slot (possibly submitting held tasks), and queues the result for
// Wait.
func (r *Router) finish(gid, shardIdx int, res *core.Result) {
	var toSubmit []held
	r.mu.Lock()
	rt, ok := r.rts[gid]
	if !ok {
		r.mu.Unlock()
		return
	}
	delete(r.rts, gid)
	if rt.local >= 0 {
		delete(r.gids[rt.shard], rt.local)
	}
	r.outstanding--
	if ten := r.tenants[rt.tenant]; ten != nil {
		if rt.counted {
			ten.inflight--
		}
		for r.cfg.TenantQuota > 0 && ten.inflight < r.cfg.TenantQuota && len(ten.held) > 0 {
			h := ten.held[0]
			ten.held = ten.held[1:]
			ten.inflight++
			hrt := r.rts[h.gid]
			hrt.counted = true
			r.rts[h.gid] = hrt
			toSubmit = append(toSubmit, h)
		}
		if ten.inflight == 0 && len(ten.held) == 0 {
			delete(r.tenants, rt.tenant)
		}
	}
	r.mu.Unlock()
	r.vm.ShardDispatches.With(shardLabel(shardIdx)).Inc()
	r.queueResult(res)
	for _, h := range toSubmit {
		if err := r.submitTo(h.gid, h.shard, h.spec); err != nil {
			r.finish(h.gid, h.shard, &core.Result{
				TaskID: h.gid, OK: false, ExitCode: -1, Error: "shard: " + err.Error(),
			})
		}
	}
}

// queueResult appends to the unbounded delivery queue and wakes the
// deliverer without ever blocking.
func (r *Router) queueResult(res *core.Result) {
	r.resMu.Lock()
	r.resQ = append(r.resQ, res)
	r.resMu.Unlock()
	select {
	case r.resSig <- struct{}{}:
	default:
	}
}

// deliverLoop moves queued results into the buffered channel Wait reads,
// flushing what fits at shutdown (mirrors core.Manager.deliverLoop).
func (r *Router) deliverLoop() {
	defer r.bg.Done()
	for {
		r.resMu.Lock()
		var res *core.Result
		if len(r.resQ) > 0 {
			res = r.resQ[0]
			r.resQ = r.resQ[1:]
		}
		r.resMu.Unlock()
		if res == nil {
			select {
			case <-r.resSig:
				continue
			case <-r.done:
				r.flushResults()
				return
			}
		}
		select {
		case r.results <- res:
		case <-r.done:
			r.resMu.Lock()
			r.resQ = append([]*core.Result{res}, r.resQ...)
			r.resMu.Unlock()
			r.flushResults()
			return
		}
	}
}

func (r *Router) flushResults() {
	r.resMu.Lock()
	defer r.resMu.Unlock()
	for len(r.resQ) > 0 {
		select {
		case r.results <- r.resQ[0]:
			r.resQ = r.resQ[1:]
		default:
			return
		}
	}
}

// FetchFile retrieves a file's content from whichever shard's cluster
// holds it: the bound shard when the file has workflow affinity,
// otherwise each shard in turn.
func (r *Router) FetchFile(ctx context.Context, fileID string) ([]byte, error) {
	if f, ok := r.reg.Lookup(fileID); ok && f.Type == files.Buffer {
		return append([]byte(nil), f.Content...), nil
	}
	r.mu.Lock()
	s, bound := r.aff.shardOf(fileID)
	r.mu.Unlock()
	if bound {
		return r.shards[s].FetchFile(ctx, fileID)
	}
	var lastErr error
	for _, sh := range r.shards {
		data, err := sh.FetchFile(ctx, fileID)
		if err == nil {
			return data, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, lastErr
}

// InstallLibrary deploys the library on every shard, so invocations can
// route anywhere.
func (r *Router) InstallLibrary(name string, res resources.R) {
	for _, sh := range r.shards {
		sh.InstallLibrary(name, res)
	}
}

// ReplicateFile sets a replication goal at the shard bound to the file,
// or at every shard when the file has no affinity.
func (r *Router) ReplicateFile(fileID string, n int) error {
	if _, ok := r.reg.Lookup(fileID); !ok {
		return fmt.Errorf("core: unknown file %s", fileID)
	}
	r.mu.Lock()
	s, bound := r.aff.shardOf(fileID)
	r.mu.Unlock()
	if bound {
		return r.shards[s].ReplicateFile(fileID, n)
	}
	for _, sh := range r.shards {
		if err := sh.ReplicateFile(fileID, n); err != nil {
			return err
		}
	}
	return nil
}

// EndWorkflow concludes the workflow on every shard and forgets all
// workflow-affinity bindings, so the next workflow redistributes freely.
func (r *Router) EndWorkflow() {
	for _, sh := range r.shards {
		sh.EndWorkflow()
	}
	r.mu.Lock()
	r.aff.reset()
	r.mu.Unlock()
}

// Categories merges per-category statistics across shards.
func (r *Router) Categories() []core.CategoryStats {
	merged := make(map[string]*core.CategoryStats)
	var order []string
	for _, sh := range r.shards {
		for _, c := range sh.Categories() {
			m := merged[c.Category]
			if m == nil {
				cc := c
				merged[c.Category] = &cc
				order = append(order, c.Category)
				continue
			}
			m.Done += c.Done
			m.Failed += c.Failed
			if c.MaxDisk > m.MaxDisk {
				m.MaxDisk = c.MaxDisk
			}
			if c.MaxMemory > m.MaxMemory {
				m.MaxMemory = c.MaxMemory
			}
			m.TotalRunMS += c.TotalRunMS
			m.TotalStagedMS += c.TotalStagedMS
		}
	}
	sort.Strings(order)
	out := make([]core.CategoryStats, 0, len(order))
	for _, name := range order {
		out = append(out, *merged[name])
	}
	return out
}

// Debug merges every shard's scheduling-state dump.
func (r *Router) Debug() core.DebugReport {
	agg := core.DebugReport{Addr: r.Addr()}
	for _, sh := range r.shards {
		d := sh.Debug()
		if d.Now > agg.Now {
			agg.Now = d.Now
		}
		agg.Tasks = append(agg.Tasks, d.Tasks...)
		agg.Replicas = append(agg.Replicas, d.Replicas...)
		agg.Transfers = append(agg.Transfers, d.Transfers...)
		agg.Retries = append(agg.Retries, d.Retries...)
		agg.EventsHandled += d.EventsHandled
		agg.SchedulePasses += d.SchedulePasses
	}
	return agg
}

// Close stops the balancer, advertisers, pumps, and every shard.
func (r *Router) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	for _, a := range r.advs {
		a.Stop()
	}
	r.pumpStop()
	close(r.done)
	for _, sh := range r.shards {
		sh.Close()
	}
	r.bg.Wait()
	r.flushResults()
}

package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring mapping workflow-affinity keys to shard
// indices. Each shard owns vnodesPerShard points on the ring, so keys
// spread evenly and adding or removing one shard moves only ~1/N of the
// key space — the property the affinity-stability tests pin down. Lookup
// is read-only after construction, so the ring needs no locking.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// defaultVnodes balances lookup cost against assignment evenness; 64
// points per shard keeps the imbalance under a few percent for small N.
const defaultVnodes = 64

// newRing builds a ring over shards 0..n-1.
func newRing(n, vnodesPerShard int) *ring {
	if vnodesPerShard <= 0 {
		vnodesPerShard = defaultVnodes
	}
	r := &ring{points: make([]ringPoint, 0, n*vnodesPerShard)}
	for s := 0; s < n; s++ {
		for v := 0; v < vnodesPerShard; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hashKey(fmt.Sprintf("shard-%d-vnode-%d", s, v)),
				shard: s,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// lookup returns the shard owning key: the first ring point at or after
// the key's hash, wrapping at the top.
func (r *ring) lookup(key string) int {
	h := hashKey(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

func hashKey(key string) uint64 {
	f := fnv.New64a()
	f.Write([]byte(key))
	return mix64(f.Sum64())
}

// mix64 is the 64-bit murmur3 finalizer. Raw FNV-1a hashes of structured
// names like "shard-3-vnode-17" land nearly sequentially (the tail bytes
// barely diffuse), which would collapse each shard's vnodes into one arc
// of the ring; full avalanche restores the even spread consistent hashing
// depends on.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

package shard

import (
	"encoding/json"
	"net"
	"net/http"

	"taskvine/internal/core"
	"taskvine/internal/metrics"
)

// Status returns an aggregate snapshot across all shards: worker rows are
// concatenated, task counts summed (including router-held submissions,
// which are waiting work the shards have not seen yet). FilesDeclared
// comes from the shared registry, so it is taken once, not summed.
func (r *Router) Status() core.Status {
	sts := r.ShardStatuses()
	agg := core.Status{}
	for i, st := range sts {
		if i == 0 {
			agg.Addr = st.Addr
			agg.FilesDeclared = st.FilesDeclared
			agg.UptimeSeconds = st.UptimeSeconds
		}
		agg.Workers = append(agg.Workers, st.Workers...)
		agg.TasksWaiting += st.TasksWaiting
		agg.TasksStaging += st.TasksStaging
		agg.TasksRunning += st.TasksRunning
		agg.TasksDone += st.TasksDone
		agg.TasksFailed += st.TasksFailed
		agg.TransfersInFlight += st.TransfersInFlight
	}
	r.mu.Lock()
	for _, ten := range r.tenants {
		agg.TasksWaiting += len(ten.held)
	}
	r.mu.Unlock()
	return agg
}

// ShardStatuses returns each shard's own status snapshot, in shard order.
func (r *Router) ShardStatuses() []core.Status {
	out := make([]core.Status, len(r.shards))
	for i, sh := range r.shards {
		out[i] = sh.Status()
	}
	return out
}

// ServeStatus exposes the router's monitoring surface over HTTP:
//
//	GET /status       -> aggregate status, single-manager shape (JSON)
//	GET /shards       -> per-shard status array (JSON)
//	GET /metrics      -> shared instrument registry, Prometheus text
//	GET /metrics.json -> shared instrument registry, JSON snapshot
//	GET /debug/vine   -> merged scheduling-state dump (JSON)
//
// It returns the bound address; the server stops when the router closes.
func (r *Router) ServeStatus(addr string) (string, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/status", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(r.Status())
	})
	mux.HandleFunc("/shards", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(r.ShardStatuses())
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		metrics.WritePrometheus(w, r.Metrics())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(metrics.TakeSnapshot(r.Metrics()))
	})
	mux.HandleFunc("/debug/vine", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(r.Debug())
	})
	srv := &http.Server{Handler: mux}
	r.bg.Add(1)
	go func() {
		defer r.bg.Done()
		_ = srv.Serve(ln)
	}()
	r.bg.Add(1)
	go func() {
		defer r.bg.Done()
		<-r.done
		_ = srv.Close()
	}()
	return ln.Addr().String(), nil
}

// Package taskvine is a Go implementation of TaskVine, the workflow
// execution system described in "TaskVine: Managing In-Cluster Storage for
// High-Throughput Data Intensive Workflows" (Sly-Delgado et al., SC-W 2023).
//
// A TaskVine workflow is a dynamic graph of immutable data objects and
// tasks. The Manager coordinates a pool of Workers that exploit the local
// storage, memory, and compute of cluster nodes: data is left in place
// where it is created, replicated worker-to-worker under supervision, and
// reused across tasks and workflows through content-addressable caching.
//
// A minimal application mirrors Figure 3 of the paper:
//
//	m, _ := taskvine.NewManager(taskvine.ManagerConfig{})
//	blastURL := m.DeclareURL("https://.../blast.tar.gz", taskvine.CacheWorker)
//	blast, _ := m.DeclareUntar(blastURL, taskvine.CacheWorker)
//	land, _ := m.DeclareUntar(m.DeclareURL("https://.../landmark.tar.gz", taskvine.CacheWorker), taskvine.CacheWorkflow)
//
//	for i := 0; i < 1000; i++ {
//		query := m.DeclareBuffer(makeQuery(i), taskvine.CacheTask)
//		t := taskvine.NewTask("blast/bin/blast -db landmark -q query")
//		t.AddInput(query, "query")
//		t.AddInput(blast, "blast")
//		t.AddInput(land, "landmark")
//		t.SetEnv("BLASTDB", "landmark")
//		m.Submit(t)
//	}
//	for !m.Empty() {
//		r, _ := m.Wait(ctx)
//		...
//	}
package taskvine

import (
	"context"
	"fmt"
	"log"
	"time"

	"taskvine/internal/catalog"
	"taskvine/internal/core"
	"taskvine/internal/files"
	"taskvine/internal/httpsource"
	"taskvine/internal/metrics"
	"taskvine/internal/policy"
	"taskvine/internal/protocol"
	"taskvine/internal/resources"
	"taskvine/internal/shard"
	"taskvine/internal/taskspec"
	"taskvine/internal/trace"
)

// CacheLevel is the cache-lifetime hint an application offers the manager
// about each file (§2.3).
type CacheLevel = files.Lifetime

// Cache lifetimes, from most to least ephemeral.
const (
	// CacheTask files are discarded as soon as the consuming task ends.
	CacheTask = files.LifetimeTask
	// CacheWorkflow files (the default) live for the workflow run.
	CacheWorkflow = files.LifetimeWorkflow
	// CacheWorker files persist on workers across workflows — typically
	// software packages and reference datasets.
	CacheWorker = files.LifetimeWorker
)

// Resources declares the fixed allocation a task consumes (cores, bytes of
// memory and disk, GPUs).
type Resources = resources.R

// Bytes helpers for resource declarations.
const (
	KB = resources.KB
	MB = resources.MB
	GB = resources.GB
	TB = resources.TB
)

// File is an opaque handle to a declared data object.
type File struct{ id string }

// ID returns the manager-assigned cache name of the object.
func (f File) ID() string { return f.id }

// Task is a unit of execution bound explicitly to its input and output
// files (§2.4). Create with NewTask, NewFunctionCall, or NewLibraryTask,
// configure, then Submit.
type Task struct {
	spec *taskspec.Spec
}

// NewTask creates a plain task: a Unix command line executed in a private
// sandbox at a worker.
func NewTask(command string) *Task {
	return &Task{spec: &taskspec.Spec{Kind: taskspec.KindCommand, Command: command}}
}

// NewFunctionCall creates a serverless FunctionCall task (§3.4) that
// invokes the named function of a library with JSON-serialized arguments.
// If the library has been installed with InstallLibrary, the call is routed
// to a persistent Library Instance and pays no startup cost; otherwise each
// call boots the library itself.
func NewFunctionCall(library, function string, args []byte) *Task {
	return &Task{spec: &taskspec.Spec{
		Kind:     taskspec.KindFunction,
		Library:  library,
		Function: function,
		Args:     args,
	}}
}

// AddInput mounts a declared file into the task sandbox under name.
func (t *Task) AddInput(f File, name string) { t.spec.AddInput(f.id, name) }

// AddOutput binds a file the task will produce at the sandbox name.
func (t *Task) AddOutput(f File, name string) { t.spec.AddOutput(f.id, name) }

// SetEnv sets an environment variable in the task's private environment.
func (t *Task) SetEnv(key, value string) { t.spec.SetEnv(key, value) }

// SetResources declares the task's fixed resource allocation, monitored
// and enforced at execution time.
func (t *Task) SetResources(r Resources) { t.spec.Resources = r }

// SetRetries bounds how many times the manager re-dispatches the task after
// failure before reporting it failed.
func (t *Task) SetRetries(n int) { t.spec.MaxRetries = n }

// SetCategory labels the task for reporting.
func (t *Task) SetCategory(c string) { t.spec.Category = c }

// SetWorkflow labels the task with an explicit workflow name. With a
// sharded manager every task carrying the same label is routed to the
// same shard, overriding the affinity the router would otherwise infer
// from the task's files. A task must not join two workflows already bound
// to different shards.
func (t *Task) SetWorkflow(name string) { t.spec.Workflow = name }

// SetTenant labels the task with a tenant identity for fair-share
// accounting: with a sharded manager and a TenantQuota configured, each
// tenant holds at most that many in-flight tasks while the rest wait in a
// router-side queue.
func (t *Task) SetTenant(name string) { t.spec.Tenant = name }

// SetMaxRunTime bounds the task's execution wall time at the worker;
// exceeding it kills the task (§2.1 execution-time enforcement).
func (t *Task) SetMaxRunTime(d time.Duration) { t.spec.MaxRunSeconds = d.Seconds() }

// ReplicateFile asks the manager to maintain at least n replicas of a file
// across workers, for reliability and transfer concurrency (§2.2).
func (m *Manager) ReplicateFile(f File, n int) error { return m.core.ReplicateFile(f.id, n) }

// Status returns a consistent snapshot of cluster state: workers, their
// committed resources and cached files, and the task pipeline.
func (m *Manager) Status() core.Status { return m.core.Status() }

// ServeStatus exposes the manager's introspection surface over HTTP for
// monitoring with cmd/vine-status or a Prometheus scraper: /status and
// /debug/vine (JSON), /trace (CSV), /metrics (Prometheus text), and
// /metrics.json (snapshot). It returns the bound address.
func (m *Manager) ServeStatus(addr string) (string, error) { return m.core.ServeStatus(addr) }

// Debug returns the deep scheduling state behind /debug/vine: the live task
// queue, the File Replica Table, the Current Transfer Table, and transfer
// retry backoffs.
func (m *Manager) Debug() core.DebugReport { return m.core.Debug() }

// Metrics returns the manager's instrument registry. All counters derived
// from execution events are maintained by a trace bridge, so the live
// instruments and post-hoc trace analysis always agree.
func (m *Manager) Metrics() *metrics.Registry { return m.core.Metrics() }

// CategoryStats aggregates observed task behaviour per category: counts,
// the largest measured disk and memory consumption, and execution times —
// the data an application needs to right-size future allocations (§2.1).
type CategoryStats = core.CategoryStats

// Categories returns per-category statistics for all finished tasks.
func (m *Manager) Categories() []CategoryStats { return m.core.Categories() }

// Result is the outcome of one completed task.
type Result = core.Result

// PlacementSpec configures workflow-aware lookahead data placement: the
// manager pushes completed outputs toward the workers its waiting consumers
// will run on, prefetches shared inputs ahead of dispatch, and replicates
// high-fanout files speculatively, all within a per-worker disk budget.
// Disabled by default; set Enabled and leave the other fields zero for the
// tuned defaults.
type PlacementSpec = policy.PlacementSpec

// ManagerConfig parameterizes a Manager.
type ManagerConfig struct {
	// ListenAddr is where workers connect; defaults to a loopback port.
	ListenAddr string
	// Limits bounds concurrent transfers per source; zero fields take the
	// paper's defaults (worker-to-worker limit 3).
	Limits policy.Limits
	// Logger receives operational logs; nil silences them.
	Logger *log.Logger
	// DefaultTaskResources fills unspecified task requests (default: one
	// core).
	DefaultTaskResources Resources
	// AutoSizeResources fills unspecified task disk/memory requests from
	// each category's observed history (twice the largest measurement).
	AutoSizeResources bool
	// TraceFile, when set, receives the execution event log as CSV when
	// the manager closes — the workflow's transaction log.
	TraceFile string
	// Placement enables workflow-aware lookahead data placement (disabled
	// by default — scheduling behaviour is then byte-identical to a build
	// without the engine).
	Placement PlacementSpec
	// Name is the manager's project name, advertised to the catalog when
	// CatalogAddr is set (the discovery mechanism of the TaskVine
	// ecosystem).
	Name string
	// CatalogAddr is a catalog server to advertise to ("host:port").
	CatalogAddr string
	// Shards, when greater than one, runs that many manager event loops
	// in parallel behind a workflow-affinity router (internal/shard):
	// each workflow's tasks stay on one shard, workers are partitioned
	// and leased between shards by queue depth, and dispatch throughput
	// scales with the shard count. Zero or one keeps the classic single
	// event loop, byte-identical in behaviour.
	Shards int
	// TenantQuota bounds each tenant's in-flight submissions when
	// sharding is enabled (see Task.SetTenant); 0 disables fair-share
	// holds.
	TenantQuota int
}

// control is the plane the facade drives: either a single core.Manager or
// a sharded router, which implement the same surface.
type control interface {
	Addr() string
	Trace() *trace.Log
	Files() *files.Registry
	Submit(spec *taskspec.Spec) (int, error)
	Wait(ctx context.Context) (*core.Result, error)
	Invoke(library, function string, args []byte) (int, error)
	InvokeResident(library, function string, args []byte) (int, string, error)
	InvokeChained(library, function, handleID string) (int, string, error)
	Cancel(taskID int) error
	Empty() bool
	FetchFile(ctx context.Context, fileID string) ([]byte, error)
	InstallLibrary(name string, res resources.R)
	ReplicateFile(fileID string, n int) error
	EndWorkflow()
	Close()
	Status() core.Status
	ServeStatus(addr string) (string, error)
	Debug() core.DebugReport
	Metrics() *metrics.Registry
	Categories() []core.CategoryStats
}

// Manager coordinates workers to execute a workflow (§2.2).
type Manager struct {
	core control
	adv  *catalog.Advertiser
}

// NewManager starts a manager listening for worker connections.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	base := core.Config{
		ListenAddr:           cfg.ListenAddr,
		Limits:               cfg.Limits,
		Head:                 httpsource.Head,
		Logger:               cfg.Logger,
		DefaultTaskResources: cfg.DefaultTaskResources,
		AutoSizeResources:    cfg.AutoSizeResources,
		TraceFile:            cfg.TraceFile,
		Placement:            cfg.Placement,
	}
	if cfg.Shards > 1 {
		// The router owns catalog advertisement (one entry per shard).
		r, err := shard.New(shard.Config{
			Shards:      cfg.Shards,
			Manager:     base,
			TenantQuota: cfg.TenantQuota,
			Name:        cfg.Name,
			CatalogAddr: cfg.CatalogAddr,
			Logger:      cfg.Logger,
		})
		if err != nil {
			return nil, err
		}
		return &Manager{core: r}, nil
	}
	c, err := core.NewManager(base)
	if err != nil {
		return nil, err
	}
	m := &Manager{core: c}
	if cfg.CatalogAddr != "" {
		name := cfg.Name
		if name == "" {
			name = "taskvine"
		}
		m.adv = catalog.NewAdvertiser(cfg.CatalogAddr, name, 0, func() catalog.Entry {
			s := c.Status()
			return catalog.Entry{
				Addr:         s.Addr,
				Workers:      len(s.Workers),
				TasksWaiting: s.TasksWaiting,
				TasksRunning: s.TasksRunning,
			}
		})
	}
	return m, nil
}

// Addr returns the address workers should connect to. With sharding
// enabled this is shard 0's address; use ShardAddrs to spread workers.
func (m *Manager) Addr() string { return m.core.Addr() }

// ShardAddrs returns every shard's worker-facing address (a single
// address without sharding). Launchers should distribute workers
// round-robin across these; the lease balancer corrects any imbalance as
// load shifts.
func (m *Manager) ShardAddrs() []string {
	if r, ok := m.core.(*shard.Router); ok {
		return r.Addrs()
	}
	return []string{m.core.Addr()}
}

// Trace returns the manager's execution event log, the raw material for
// task-view and worker-view analysis.
func (m *Manager) Trace() *trace.Log { return m.core.Trace() }

// DeclareFile names a file or directory on the manager's (shared)
// filesystem as a workflow data object.
func (m *Manager) DeclareFile(path string, level CacheLevel) (File, error) {
	f, err := m.core.Files().DeclareLocal(path, level)
	if err != nil {
		return File{}, err
	}
	return File{f.ID}, nil
}

// DeclareBuffer names literal in-memory bytes as a data object.
func (m *Manager) DeclareBuffer(content []byte, level CacheLevel) File {
	f, err := m.core.Files().DeclareBuffer(content, level)
	if err != nil {
		// DeclareBuffer cannot fail except on internal collision, which is
		// a programming error.
		panic(err)
	}
	return File{f.ID}
}

// DeclareURL names a remote object that workers download on demand. For
// CacheWorker lifetime the manager derives a strong cache name from the
// URL's HTTP metadata without downloading it (§3.2).
func (m *Manager) DeclareURL(url string, level CacheLevel) (File, error) {
	f, err := m.core.Files().DeclareURL(url, level)
	if err != nil {
		return File{}, err
	}
	return File{f.ID}, nil
}

// DeclareTemp names an ephemeral file that exists only within the cluster
// and is never materialized outside it — the mechanism behind the
// in-cluster storage mode of Figure 13b.
func (m *Manager) DeclareTemp() File {
	return File{m.core.Files().DeclareTemp().ID}
}

// DeclareUntar wraps a built-in MiniTask (§3.1) that unpacks the given
// archive at the worker, returning the unpacked directory as a file object
// shared by all tasks on that worker.
func (m *Manager) DeclareUntar(archive File, level CacheLevel) (File, error) {
	spec := taskspec.UntarSpec(archive.id)
	f, err := m.core.Files().DeclareMiniTask(spec, level)
	if err != nil {
		return File{}, err
	}
	return File{f.ID}, nil
}

// DeclareGunzip wraps a built-in MiniTask that decompresses the given
// object at the worker.
func (m *Manager) DeclareGunzip(gz File, level CacheLevel) (File, error) {
	spec := taskspec.GunzipSpec(gz.id)
	f, err := m.core.Files().DeclareMiniTask(spec, level)
	if err != nil {
		return File{}, err
	}
	return File{f.ID}, nil
}

// DeclareMiniTask turns a task specification into a file produced on
// demand at workers (Figure 6). The task must produce one output named
// "output"; its product is named by the Merkle hash of the specification,
// so identical MiniTasks share one cached product cluster-wide.
func (m *Manager) DeclareMiniTask(t *Task, level CacheLevel) (File, error) {
	f, err := m.core.Files().DeclareMiniTask(t.spec, level)
	if err != nil {
		return File{}, err
	}
	return File{f.ID}, nil
}

// Submit queues a task for execution and returns its task ID.
func (m *Manager) Submit(t *Task) (int, error) {
	return m.core.Submit(t.spec)
}

// Wait blocks for the next completed task.
func (m *Manager) Wait(ctx context.Context) (*Result, error) {
	return m.core.Wait(ctx)
}

// WaitTimeout waits up to d for the next completed task.
func (m *Manager) WaitTimeout(d time.Duration) (*Result, error) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return m.core.Wait(ctx)
}

// Invoke calls a function of an installed library. When a worker already
// runs an instance, the call is routed straight to it with a lightweight
// invoke message and pays neither scheduling nor startup cost; otherwise
// it falls back to Submit-style scheduling of a FunctionCall task. The
// result arrives through Wait like any task's, carrying the serialized
// return value in Output.
func (m *Manager) Invoke(library, function string, args []byte) (int, error) {
	return m.core.Invoke(library, function, args)
}

// Handle is a pass-by-reference name for a function result left resident
// in a worker's cache (preferentially its in-memory tier). A Handle moves
// through the manager as a name only; the bytes it denotes stay in the
// cluster until fetched or the workflow ends.
type Handle struct{ id string }

// ID returns the handle's cache name.
func (h Handle) ID() string { return h.id }

// File converts the handle into a File so the resident object can be
// mounted as an input of an ordinary task.
func (h Handle) File() File { return File{h.id} }

// InvokeResident calls a function like Invoke but leaves the result
// resident at the executing worker instead of shipping it back inline. The
// returned Handle names the result; chain it with InvokeChained, mount it
// via Handle.File, or FetchFile it to materialize the bytes:
//
//	_, h, _ := m.InvokeResident("math", "double", []byte("[1]"))
//	for i := 0; i < 10; i++ {
//		_, h, _ = m.InvokeChained("math", "double", h)
//	}
//	final, _ := m.FetchFile(ctx, h.File())
//
// The intermediate results of the chain above never leave the worker.
func (m *Manager) InvokeResident(library, function string, args []byte) (int, Handle, error) {
	id, hid, err := m.core.InvokeResident(library, function, args)
	return id, Handle{hid}, err
}

// InvokeChained calls a function whose argument bytes are the contents of
// a previously returned Handle, resolved at the worker holding them. The
// result is again left resident and named by the returned Handle.
func (m *Manager) InvokeChained(library, function string, h Handle) (int, Handle, error) {
	id, hid, err := m.core.InvokeChained(library, function, h.id)
	return id, Handle{hid}, err
}

// Cancel aborts a submitted task. Waiting tasks finish immediately with a
// cancellation result; running tasks are killed at their worker and finish
// when the worker confirms. Cancelling an unknown or finished task errors.
func (m *Manager) Cancel(taskID int) error { return m.core.Cancel(taskID) }

// Empty reports whether every submitted task has completed.
func (m *Manager) Empty() bool { return m.core.Empty() }

// FetchFile retrieves a data object's content back to the manager.
func (m *Manager) FetchFile(ctx context.Context, f File) ([]byte, error) {
	return m.core.FetchFile(ctx, f.id)
}

// InstallLibrary deploys the named serverless library (compiled into the
// workers) to every current and future worker, each instance holding the
// given static allocation (§3.4).
func (m *Manager) InstallLibrary(name string, res Resources) {
	m.core.InstallLibrary(name, res)
}

// EndWorkflow concludes the current workflow: ephemeral objects are
// discarded cluster-wide while CacheWorker objects persist for future
// workflows.
func (m *Manager) EndWorkflow() { m.core.EndWorkflow() }

// Close releases all workers and stops the manager.
func (m *Manager) Close() {
	if m.adv != nil {
		m.adv.Stop()
	}
	m.core.Close()
}

// OutputInfo describes one output object a completed task produced.
type OutputInfo = protocol.OutputInfo

// String renders a result for logs.
func ResultString(r *Result) string {
	status := "ok"
	if !r.OK {
		status = "failed: " + r.Error
	}
	return fmt.Sprintf("task %d on %s: %s (staged %dms, ran %dms)",
		r.TaskID, r.Worker, status, r.StagedMS, r.RunMS)
}

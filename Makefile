# TaskVine build and verification targets.
#
# `make ci` is the gate the CI workflow runs: build, vet, vinelint, the
# full test suite under the race detector, and a fuzz smoke pass over the
# protocol codec. Each target is also usable on its own during
# development.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test lint vet race fuzz chaos bench bench-diff cover cover-update ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# lint is the single static-analysis gate: go vet plus the
# domain-specific analyzer suite (tools/vinelint) — simulator determinism,
# lock discipline and ordering, wire-protocol completeness, finalization
# error handling, event-loop blocking, goroutine lifecycles, and metric
# parity. Diagnostics are also written to VINELINT.json for CI
# annotations; set LINTFLAGS="-format github" to emit inline workflow
# annotations.
LINTFLAGS ?=
lint:
	$(GO) vet ./...
	$(GO) run ./tools/vinelint -json-file VINELINT.json $(LINTFLAGS) ./...

vet:
	$(GO) vet ./...

# race runs every test twice under the race detector; -count=2 defeats
# test caching and shakes out order-dependent schedules.
race:
	$(GO) test -race -count=2 ./...

# fuzz smoke-tests the protocol codec — both framings — from the seeded
# corpus for a short, CI-friendly interval per target.
fuzz:
	$(GO) test ./internal/protocol -run '^$$' -fuzz FuzzRecv -fuzztime $(FUZZTIME)
	$(GO) test ./internal/protocol -run '^$$' -fuzz FuzzRoundTrip -fuzztime $(FUZZTIME)
	$(GO) test ./internal/protocol -run '^$$' -fuzz FuzzBinaryDecode -fuzztime $(FUZZTIME)
	$(GO) test ./internal/protocol -run '^$$' -fuzz FuzzBinaryRoundTrip -fuzztime $(FUZZTIME)

# chaos runs the seeded fault-injection suite (sim, core, worker, batch)
# under the race detector for two fixed seeds. Fixed seeds keep failures
# reproducible: a red chaos run replays bit-for-bit with the same seed.
chaos:
	VINE_CHAOS_SEED=1 $(GO) test -race -count=1 -run Chaos ./...
	VINE_CHAOS_SEED=2 $(GO) test -race -count=1 -run Chaos ./...

# cover measures per-package statement coverage and gates it against the
# floors in COVERAGE.json (tools/covercheck). The full per-package report
# lands in COVERAGE_REPORT.json — a non-gating artifact CI uploads so
# coverage trends stay visible — while the floors (internal/core,
# internal/sim) fail the build on regression. cover-update additionally
# refreshes the recorded "measured" section of COVERAGE.json after an
# intentional change.
cover:
	$(GO) test -cover ./... > COVER.out || { cat COVER.out; rm -f COVER.out; exit 1; }
	cat COVER.out
	$(GO) run ./tools/covercheck -ratchet COVERAGE.json -report COVERAGE_REPORT.json < COVER.out
	rm -f COVER.out

cover-update:
	$(GO) test -cover ./... > COVER.out || { cat COVER.out; rm -f COVER.out; exit 1; }
	$(GO) run ./tools/covercheck -ratchet COVERAGE.json -report COVERAGE_REPORT.json -update < COVER.out
	rm -f COVER.out

# bench runs the dispatch, scheduler-pass, sharded-dispatch, protocol, and
# hashing benchmarks with -count=5 (enough repetitions for benchstat-style
# comparison), plus one full 50k-task simulated workflow, and records the
# raw test2json stream in BENCH_core.json. CI uploads the file as a
# non-gating artifact so perf drift is visible across commits without
# failing builds.
bench:
	$(GO) test -json -run '^$$' -bench . -benchmem -count=5 \
		./internal/core ./internal/shard ./internal/protocol ./internal/hashing > BENCH_core.json
	$(GO) test -json -run '^$$' -bench 'SimTopEFT50k|SimTransferBound' -benchtime 1x -count=1 \
		./internal/workloads >> BENCH_core.json

# bench-diff re-runs the benchmark suite into BENCH_new.json and prints a
# benchstat-style old-vs-new comparison against the committed
# BENCH_core.json baseline (tools/benchdiff). Informational only: CI
# uploads BENCH_DIFF.txt as a non-gating artifact.
bench-diff:
	$(GO) test -json -run '^$$' -bench . -benchmem -count=5 \
		./internal/core ./internal/shard ./internal/protocol ./internal/hashing > BENCH_new.json
	$(GO) test -json -run '^$$' -bench 'SimTopEFT50k|SimTransferBound' -benchtime 1x -count=1 \
		./internal/workloads >> BENCH_new.json
	$(GO) run ./tools/benchdiff BENCH_core.json BENCH_new.json | tee BENCH_DIFF.txt

ci: build lint race chaos fuzz cover

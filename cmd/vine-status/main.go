// Command vine-status queries a manager's monitoring endpoint and renders
// the cluster state: workers, their committed resources and cache contents,
// and the task pipeline — the operator's view of the manager's "detailed
// picture of the distributed state" (§2.2).
//
// Usage:
//
//	vine-status [-json] http://MANAGER-STATUS-ADDR
//	vine-status -metrics http://MANAGER-STATUS-ADDR   # Prometheus text
//	vine-status -debug   http://MANAGER-STATUS-ADDR   # scheduling tables
//	vine-status -shards  http://MANAGER-STATUS-ADDR   # per-shard breakdown
//
// The manager exposes the endpoint via Manager.ServeStatus (the examples
// and vine-run print it at startup when enabled). -metrics dumps the
// instrument families in Prometheus text format; -debug renders the deep
// scheduling state (task queue, replica table, in-flight transfers, retry
// backoffs) from /debug/vine.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"text/tabwriter"

	"taskvine/internal/catalog"
	"taskvine/internal/core"
	"taskvine/internal/resources"
)

// listCatalog renders the managers advertised at a catalog server.
func listCatalog(addr, name string) error {
	entries, err := catalog.Query(addr, name)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "PROJECT\tADDRESS\tWORKERS\tWAITING\tRUNNING\tLAST HEARD")
	for _, e := range entries {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%s\n",
			e.Name, e.Addr, e.Workers, e.TasksWaiting, e.TasksRunning,
			e.LastHeard.Format("15:04:05"))
	}
	return tw.Flush()
}

func main() {
	raw := flag.Bool("json", false, "print the raw status JSON")
	cat := flag.String("catalog", "", "list managers advertised at this catalog server instead")
	name := flag.String("name", "", "filter catalog listing by project name")
	metricsDump := flag.Bool("metrics", false, "dump the manager's /metrics endpoint (Prometheus text format)")
	debugDump := flag.Bool("debug", false, "render the manager's /debug/vine scheduling tables")
	shardsDump := flag.Bool("shards", false, "render the per-shard breakdown of a sharded manager (/shards)")
	flag.Parse()
	if *cat != "" {
		if err := listCatalog(*cat, *name); err != nil {
			fmt.Fprintf(os.Stderr, "vine-status: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	url := flag.Arg(0)
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	var err error
	switch {
	case *metricsDump:
		err = dumpMetrics(url + "/metrics")
	case *debugDump:
		err = runDebug(url+"/debug/vine", *raw)
	case *shardsDump:
		err = runShards(url+"/shards", *raw)
	default:
		err = run(url+"/status", *raw)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "vine-status: %v\n", err)
		os.Exit(1)
	}
}

// dumpMetrics streams the Prometheus text exposition verbatim; the format
// is already line-oriented and human-readable.
func dumpMetrics(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

// runDebug renders the /debug/vine scheduling tables.
func runDebug(url string, raw bool) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var d core.DebugReport
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return fmt.Errorf("decoding debug report: %w", err)
	}
	if raw {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(d)
	}
	fmt.Printf("manager %s  t=%.1fs\n\n", d.Addr, d.Now)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	if len(d.Tasks) > 0 {
		fmt.Fprintln(tw, "TASK\tSTATE\tCATEGORY\tWORKER\tRETRIES\tWAITING\tMISSING INPUTS")
		for _, t := range d.Tasks {
			fmt.Fprintf(tw, "%d\t%s\t%s\t%s\t%d\t%.1fs\t%s\n",
				t.ID, t.State, t.Category, t.Worker, t.Retries,
				t.WaitingSeconds, strings.Join(t.MissingInputs, ","))
		}
		fmt.Fprintln(tw)
	}
	if len(d.Replicas) > 0 {
		fmt.Fprintln(tw, "FILE\tREADY ON\tPENDING ON")
		for _, r := range d.Replicas {
			fmt.Fprintf(tw, "%s\t%s\t%s\n",
				r.File, strings.Join(r.Ready, ","), strings.Join(r.Pending, ","))
		}
		fmt.Fprintln(tw)
	}
	if len(d.Transfers) > 0 {
		fmt.Fprintln(tw, "TRANSFER\tFILE\tSOURCE\tDEST")
		for _, t := range d.Transfers {
			fmt.Fprintf(tw, "%s\t%s\t%s\t%s\n", t.ID, t.File, t.Source, t.Dest)
		}
		fmt.Fprintln(tw)
	}
	if len(d.Retries) > 0 {
		fmt.Fprintln(tw, "RETRYING FILE\tDEST\tATTEMPTS\tBLOCKED\tWAIT")
		for _, r := range d.Retries {
			fmt.Fprintf(tw, "%s\t%s\t%d\t%v\t%.1fs\n",
				r.File, r.Dest, r.Attempts, r.Blocked, r.WaitSecs)
		}
	}
	return tw.Flush()
}

// runShards renders the per-shard breakdown served by a sharded manager's
// /shards endpoint: one row per event loop, so an operator can see how
// the router's affinity hashing and lease balancer spread the cluster.
func runShards(url string, raw bool) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s (is the manager sharded?)", url, resp.Status)
	}
	var sts []core.Status
	if err := json.NewDecoder(resp.Body).Decode(&sts); err != nil {
		return fmt.Errorf("decoding shard statuses: %w", err)
	}
	if raw {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(sts)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SHARD\tADDRESS\tWORKERS\tWAITING\tSTAGING\tRUNNING\tDONE\tFAILED")
	for i, s := range sts {
		fmt.Fprintf(tw, "%d\t%s\t%d\t%d\t%d\t%d\t%d\t%d\n",
			i, s.Addr, len(s.Workers), s.TasksWaiting, s.TasksStaging,
			s.TasksRunning, s.TasksDone, s.TasksFailed)
	}
	return tw.Flush()
}

func run(url string, raw bool) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var s core.Status
	dec := json.NewDecoder(resp.Body)
	if err := dec.Decode(&s); err != nil {
		return fmt.Errorf("decoding status: %w", err)
	}
	if raw {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(s)
	}
	fmt.Printf("manager %s  up %.0fs\n", s.Addr, s.UptimeSeconds)
	fmt.Printf("tasks: %d waiting / %d staging / %d running / %d done / %d failed\n",
		s.TasksWaiting, s.TasksStaging, s.TasksRunning, s.TasksDone, s.TasksFailed)
	fmt.Printf("files declared: %d   transfers in flight: %d   workers: %d\n\n",
		s.FilesDeclared, s.TransfersInFlight, len(s.Workers))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "WORKER\tCORES\tMEMORY\tDISK\tTASKS\tCACHED\tLIBRARIES")
	for _, w := range s.Workers {
		fmt.Fprintf(tw, "%s\t%d/%d\t%s/%s\t%s/%s\t%d\t%d\t%s\n",
			w.ID,
			w.Committed.Cores, w.Capacity.Cores,
			resources.FormatBytes(w.Committed.Memory), resources.FormatBytes(w.Capacity.Memory),
			resources.FormatBytes(w.Committed.Disk), resources.FormatBytes(w.Capacity.Disk),
			w.RunningTasks, w.CachedFiles, strings.Join(w.Libraries, ","))
	}
	return tw.Flush()
}

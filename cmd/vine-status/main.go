// Command vine-status queries a manager's monitoring endpoint and renders
// the cluster state: workers, their committed resources and cache contents,
// and the task pipeline — the operator's view of the manager's "detailed
// picture of the distributed state" (§2.2).
//
// Usage:
//
//	vine-status [-json] http://MANAGER-STATUS-ADDR
//
// The manager exposes the endpoint via Manager.ServeStatus (the examples
// and vine-run print it at startup when enabled).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"text/tabwriter"

	"taskvine/internal/catalog"
	"taskvine/internal/core"
	"taskvine/internal/resources"
)

// listCatalog renders the managers advertised at a catalog server.
func listCatalog(addr, name string) error {
	entries, err := catalog.Query(addr, name)
	if err != nil {
		return err
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "PROJECT\tADDRESS\tWORKERS\tWAITING\tRUNNING\tLAST HEARD")
	for _, e := range entries {
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%s\n",
			e.Name, e.Addr, e.Workers, e.TasksWaiting, e.TasksRunning,
			e.LastHeard.Format("15:04:05"))
	}
	return tw.Flush()
}

func main() {
	raw := flag.Bool("json", false, "print the raw status JSON")
	cat := flag.String("catalog", "", "list managers advertised at this catalog server instead")
	name := flag.String("name", "", "filter catalog listing by project name")
	flag.Parse()
	if *cat != "" {
		if err := listCatalog(*cat, *name); err != nil {
			fmt.Fprintf(os.Stderr, "vine-status: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	url := flag.Arg(0)
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	if err := run(url+"/status", *raw); err != nil {
		fmt.Fprintf(os.Stderr, "vine-status: %v\n", err)
		os.Exit(1)
	}
}

func run(url string, raw bool) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	var s core.Status
	dec := json.NewDecoder(resp.Body)
	if err := dec.Decode(&s); err != nil {
		return fmt.Errorf("decoding status: %w", err)
	}
	if raw {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(s)
	}
	fmt.Printf("manager %s  up %.0fs\n", s.Addr, s.UptimeSeconds)
	fmt.Printf("tasks: %d waiting / %d staging / %d running / %d done / %d failed\n",
		s.TasksWaiting, s.TasksStaging, s.TasksRunning, s.TasksDone, s.TasksFailed)
	fmt.Printf("files declared: %d   transfers in flight: %d   workers: %d\n\n",
		s.FilesDeclared, s.TransfersInFlight, len(s.Workers))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "WORKER\tCORES\tMEMORY\tDISK\tTASKS\tCACHED\tLIBRARIES")
	for _, w := range s.Workers {
		fmt.Fprintf(tw, "%s\t%d/%d\t%s/%s\t%s/%s\t%d\t%d\t%s\n",
			w.ID,
			w.Committed.Cores, w.Capacity.Cores,
			resources.FormatBytes(w.Committed.Memory), resources.FormatBytes(w.Capacity.Memory),
			resources.FormatBytes(w.Committed.Disk), resources.FormatBytes(w.Capacity.Disk),
			w.RunningTasks, w.CachedFiles, strings.Join(w.Libraries, ","))
	}
	return tw.Flush()
}

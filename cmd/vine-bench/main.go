// Command vine-bench regenerates the figures of the paper's evaluation
// (§4) from simulated runs of the production scheduling policy.
//
// Usage:
//
//	vine-bench [-scale F] [-csv DIR] [all|fig9|fig10|fig11|fig11-ablation|
//	           fig12-topeft|fig12-colmena|fig12-bgd|fig13] ...
//
// -scale 1.0 runs at the paper's task and worker counts (the default 0.2
// preserves every qualitative shape and runs in seconds). With -csv the
// underlying series of each figure are written as CSV files for plotting.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"taskvine/internal/experiments"
)

var runners = map[string]func(experiments.Scale) experiments.Report{
	"fig9":               experiments.Fig9,
	"fig10":              experiments.Fig10,
	"fig11":              experiments.Fig11,
	"fig11-ablation":     experiments.Fig11Ablation,
	"fig12-topeft":       experiments.Fig12TopEFT,
	"fig12-colmena":      experiments.Fig12Colmena,
	"fig12-bgd":          experiments.Fig12BGD,
	"fig13":              experiments.Fig13,
	"ablation-placement": experiments.AblationPlacement,
	"fig9-real":          experiments.Fig9Real,
}

var order = []string{
	"fig9", "fig10", "fig11", "fig11-ablation",
	"fig12-topeft", "fig12-colmena", "fig12-bgd", "fig13", "ablation-placement",
	"fig9-real",
}

func main() {
	scale := flag.Float64("scale", 0.2, "fraction of the paper's task/worker counts (1.0 = paper scale)")
	csvDir := flag.String("csv", "", "directory to write per-figure series CSVs")
	flag.Parse()

	targets := flag.Args()
	if len(targets) == 0 || (len(targets) == 1 && targets[0] == "all") {
		targets = order
	}
	failed := 0
	for _, name := range targets {
		run, ok := runners[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "vine-bench: unknown figure %q (have: %s, all)\n",
				name, strings.Join(order, ", "))
			os.Exit(2)
		}
		rep := run(experiments.Scale(*scale))
		fmt.Println(rep)
		if !rep.OK {
			failed++
		}
		if *csvDir != "" {
			if err := writeSeries(*csvDir, rep); err != nil {
				fmt.Fprintf(os.Stderr, "vine-bench: %v\n", err)
				os.Exit(1)
			}
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "vine-bench: %d figure(s) did not reproduce the paper's shape\n", failed)
		os.Exit(1)
	}
}

func writeSeries(dir string, rep experiments.Report) error {
	if len(rep.Series) == 0 {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, s := range rep.Series {
		path := filepath.Join(dir, fmt.Sprintf("%s_%s.csv", rep.ID, s.Name))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		fmt.Fprintln(f, "x,y")
		for i := range s.X {
			fmt.Fprintf(f, "%g,%g\n", s.X[i], s.Y[i])
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

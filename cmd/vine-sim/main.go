// Command vine-sim runs a JSON-declared workload through the discrete-event
// cluster simulator and renders the paper's task-view and worker-view
// graphs as text, plus a transfer summary.
//
// Usage:
//
//	vine-sim [-limit N] [-task-view] [-worker-view] [-csv FILE] workload.json
//	vine-sim -builtin blast|envshare|distribution|topeft|colmena|bgd [-scale F] ...
//
// The JSON schema mirrors internal/sim's Workload:
//
//	{
//	  "files": [
//	    {"id": "env.tar", "size": 610000000, "kind": "manager"},
//	    {"id": "env", "size": 610000000, "kind": "mini",
//	     "mini_inputs": ["env.tar"], "unpack_rate": 20000000}
//	  ],
//	  "tasks": [
//	    {"id": 1, "inputs": ["env"], "runtime": 10, "cores": 1}
//	  ],
//	  "workers": [
//	    {"id": "w0", "cores": 4, "disk": 50000000000, "join_time": 0}
//	  ],
//	  "worker_template": {"count": 50, "cores": 4, "disk": 50000000000}
//	}
//
// File kinds: url, sharedfs, manager, temp, mini.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"taskvine/internal/experiments"
	"taskvine/internal/files"
	"taskvine/internal/policy"
	"taskvine/internal/sim"
	"taskvine/internal/trace"
	"taskvine/internal/workloads"
)

type fileDecl struct {
	ID         string   `json:"id"`
	Size       int64    `json:"size"`
	Kind       string   `json:"kind"`
	Source     string   `json:"source,omitempty"`
	Lifetime   string   `json:"lifetime,omitempty"`
	MiniInputs []string `json:"mini_inputs,omitempty"`
	UnpackRate float64  `json:"unpack_rate,omitempty"`
}

type outputDecl struct {
	ID   string `json:"id"`
	Size int64  `json:"size"`
}

type taskDecl struct {
	ID            int          `json:"id"`
	Inputs        []string     `json:"inputs,omitempty"`
	Outputs       []outputDecl `json:"outputs,omitempty"`
	Runtime       float64      `json:"runtime"`
	Cores         int          `json:"cores,omitempty"`
	Category      string       `json:"category,omitempty"`
	Library       string       `json:"library,omitempty"`
	ReturnOutputs bool         `json:"return_outputs,omitempty"`
}

type libraryDecl struct {
	Name     string  `json:"name"`
	EnvFile  string  `json:"env_file,omitempty"`
	BootTime float64 `json:"boot_time,omitempty"`
	Cores    int     `json:"cores,omitempty"`
}

type workerDecl struct {
	ID        string   `json:"id"`
	Cores     int      `json:"cores"`
	Disk      int64    `json:"disk,omitempty"`
	JoinTime  float64  `json:"join_time,omitempty"`
	LeaveTime float64  `json:"leave_time,omitempty"`
	Prestaged []string `json:"prestaged,omitempty"`
}

type workerTemplate struct {
	Count       int     `json:"count"`
	Cores       int     `json:"cores"`
	Disk        int64   `json:"disk,omitempty"`
	RampSeconds float64 `json:"ramp_seconds,omitempty"`
}

type workloadDecl struct {
	Files          []fileDecl      `json:"files"`
	Tasks          []taskDecl      `json:"tasks"`
	Libraries      []libraryDecl   `json:"libraries,omitempty"`
	Workers        []workerDecl    `json:"workers,omitempty"`
	WorkerTemplate *workerTemplate `json:"worker_template,omitempty"`
}

func main() {
	var (
		limit      = flag.Int("limit", 0, "worker-to-worker transfer limit (0 = paper default 3)")
		taskView   = flag.Bool("task-view", false, "render the task-view graph")
		workerView = flag.Bool("worker-view", true, "render the worker-view graph")
		csvPath    = flag.String("csv", "", "write the raw event trace as CSV")
		builtin    = flag.String("builtin", "", "run a built-in workload: blast, envshare, distribution, topeft, colmena, bgd")
		scale      = flag.Float64("scale", 0.2, "scale for built-in workloads")
		width      = flag.Int("width", 100, "render width in columns")
		placement  = flag.Bool("placement", false, "enable lookahead data placement (default-tuned spec)")
	)
	flag.Parse()
	if err := run(*builtin, flag.Args(), *limit, *scale, *taskView, *workerView, *csvPath, *width, *placement); err != nil {
		fmt.Fprintf(os.Stderr, "vine-sim: %v\n", err)
		os.Exit(1)
	}
}

func run(builtin string, args []string, limit int, scale float64, taskView, workerView bool, csvPath string, width int, placement bool) error {
	var w *sim.Workload
	switch {
	case builtin != "":
		var err error
		if w, err = builtinWorkload(builtin, scale); err != nil {
			return err
		}
	case len(args) == 1:
		raw, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		var decl workloadDecl
		if err := json.Unmarshal(raw, &decl); err != nil {
			return fmt.Errorf("parsing %s: %w", args[0], err)
		}
		if w, err = buildWorkload(&decl); err != nil {
			return err
		}
	default:
		return fmt.Errorf("need a workload.json or -builtin NAME")
	}

	limits := policy.Limits{}
	if limit != 0 {
		limits.WorkerSource = limit
	}
	c := sim.NewCluster(w, sim.DefaultParams(), limits)
	if placement {
		c.SetPlacement(policy.PlacementSpec{Enabled: true})
	}
	makespan := c.Run()
	events := c.Trace().Events()
	fmt.Printf("simulated %d tasks on %d workers: makespan %.1fs (%d/%d completed)\n\n",
		len(w.Tasks), len(w.Workers), makespan, c.CompletedTasks(), len(w.Tasks))
	opts := trace.RenderOptions{Width: width}
	if taskView {
		if err := trace.RenderTaskView(os.Stdout, events, opts); err != nil {
			return err
		}
		fmt.Println()
	}
	if workerView {
		if err := trace.RenderWorkerView(os.Stdout, events, opts); err != nil {
			return err
		}
		fmt.Println()
	}
	if err := trace.RenderSummary(os.Stdout, events); err != nil {
		return err
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteCSV(f, events); err != nil {
			return err
		}
		fmt.Printf("trace written to %s\n", csvPath)
	}
	if c.CompletedTasks() != len(w.Tasks) {
		return fmt.Errorf("%d task(s) never completed", len(w.Tasks)-c.CompletedTasks())
	}
	return nil
}

func builtinWorkload(name string, scale float64) (*sim.Workload, error) {
	s := experiments.Scale(scale)
	n := func(v int) int { return s.N(v) }
	switch name {
	case "blast":
		cfg := workloads.DefaultBlast()
		cfg.Tasks, cfg.Workers = n(cfg.Tasks), n(cfg.Workers)
		return workloads.Blast(cfg), nil
	case "envshare":
		cfg := workloads.DefaultEnvSharing(true)
		cfg.Tasks, cfg.Workers = n(cfg.Tasks), n(cfg.Workers)
		return workloads.EnvSharing(cfg), nil
	case "distribution":
		cfg := workloads.DefaultDistribution()
		cfg.Workers = n(cfg.Workers)
		return workloads.Distribution(cfg), nil
	case "topeft":
		cfg := workloads.DefaultTopEFT(false)
		cfg.ProcessTasks, cfg.Workers = n(cfg.ProcessTasks), n(cfg.Workers)
		return workloads.TopEFT(cfg), nil
	case "colmena":
		cfg := workloads.DefaultColmena()
		cfg.InferenceTasks, cfg.SimulationTasks = n(cfg.InferenceTasks), n(cfg.SimulationTasks)
		cfg.Workers = n(cfg.Workers)
		return workloads.Colmena(cfg), nil
	case "bgd":
		cfg := workloads.DefaultBGD()
		cfg.FunctionCalls, cfg.Workers = n(cfg.FunctionCalls), n(cfg.Workers)
		return workloads.BGD(cfg), nil
	default:
		return nil, fmt.Errorf("unknown builtin %q", name)
	}
}

func buildWorkload(decl *workloadDecl) (*sim.Workload, error) {
	w := &sim.Workload{Files: make(map[string]*sim.File)}
	for _, fd := range decl.Files {
		kind, err := fileKind(fd.Kind)
		if err != nil {
			return nil, fmt.Errorf("file %s: %w", fd.ID, err)
		}
		lt, err := lifetime(fd.Lifetime)
		if err != nil {
			return nil, fmt.Errorf("file %s: %w", fd.ID, err)
		}
		source := fd.Source
		if source == "" {
			source = "/" + fd.ID
		}
		w.Files[fd.ID] = &sim.File{
			ID: fd.ID, Size: fd.Size, Kind: kind, SourcePath: source,
			Lifetime: lt, MiniInputs: fd.MiniInputs, UnpackRate: fd.UnpackRate,
		}
	}
	for i, td := range decl.Tasks {
		id := td.ID
		if id == 0 {
			id = i + 1
		}
		t := &sim.Task{
			ID: id, Inputs: td.Inputs, Runtime: td.Runtime, Cores: td.Cores,
			Category: td.Category, Library: td.Library, ReturnOutputs: td.ReturnOutputs,
		}
		for _, od := range td.Outputs {
			if w.Files[od.ID] == nil {
				w.Files[od.ID] = &sim.File{ID: od.ID, Size: od.Size, Kind: sim.Produced}
			}
			t.Outputs = append(t.Outputs, sim.Output{ID: od.ID, Size: od.Size})
		}
		w.Tasks = append(w.Tasks, t)
	}
	for _, ld := range decl.Libraries {
		w.Libraries = append(w.Libraries, &sim.Library{
			Name: ld.Name, EnvFile: ld.EnvFile, BootTime: ld.BootTime, Cores: ld.Cores,
		})
	}
	for _, wd := range decl.Workers {
		disk := wd.Disk
		if disk == 0 {
			disk = 100e9
		}
		w.Workers = append(w.Workers, sim.WorkerSpec{
			ID: wd.ID, Cores: wd.Cores, Disk: disk, JoinTime: wd.JoinTime,
			LeaveTime: wd.LeaveTime, Prestaged: wd.Prestaged,
		})
	}
	if tpl := decl.WorkerTemplate; tpl != nil {
		disk := tpl.Disk
		if disk == 0 {
			disk = 100e9
		}
		for i := 0; i < tpl.Count; i++ {
			join := 0.0
			if tpl.RampSeconds > 0 && tpl.Count > 1 {
				join = tpl.RampSeconds * float64(i) / float64(tpl.Count)
			}
			w.Workers = append(w.Workers, sim.WorkerSpec{
				ID: fmt.Sprintf("w%03d", len(w.Workers)), Cores: tpl.Cores,
				Disk: disk, JoinTime: join,
			})
		}
	}
	if len(w.Workers) == 0 {
		return nil, fmt.Errorf("no workers declared")
	}
	return w, nil
}

func fileKind(s string) (sim.SourceKind, error) {
	switch s {
	case "url", "":
		return sim.FromURL, nil
	case "sharedfs", "shared-fs":
		return sim.FromSharedFS, nil
	case "manager":
		return sim.FromManager, nil
	case "temp", "produced":
		return sim.Produced, nil
	case "mini", "minitask":
		return sim.MiniProduct, nil
	default:
		return 0, fmt.Errorf("unknown file kind %q", s)
	}
}

func lifetime(s string) (files.Lifetime, error) {
	switch s {
	case "task":
		return files.LifetimeTask, nil
	case "", "workflow":
		return files.LifetimeWorkflow, nil
	case "worker":
		return files.LifetimeWorker, nil
	default:
		return 0, fmt.Errorf("unknown lifetime %q", s)
	}
}

// Command vine-worker runs a standalone TaskVine worker: it connects to a
// manager, offers the node's resources, and serves until released.
//
// Usage:
//
//	vine-worker -manager HOST:PORT [-workdir DIR] [-cores N]
//	            [-memory BYTES] [-disk BYTES] [-id NAME]
//
// Workers may join and leave dynamically; on restart a worker re-adopts
// the worker-lifetime objects in its persistent cache directory (§2.2).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"taskvine"
)

func main() {
	var (
		manager = flag.String("manager", "", "manager address host:port (required)")
		workdir = flag.String("workdir", "vine-worker-dir", "cache and sandbox directory")
		cores   = flag.Int("cores", runtime.NumCPU(), "cores to offer")
		memory  = flag.Int64("memory", 4*taskvine.GB, "memory bytes to offer")
		disk    = flag.Int64("disk", 10*taskvine.GB, "disk bytes to offer")
		id      = flag.String("id", "", "worker identity (default hostname-pid)")
	)
	flag.Parse()
	if *manager == "" {
		flag.Usage()
		os.Exit(2)
	}

	w, err := taskvine.NewWorker(taskvine.WorkerConfig{
		ManagerAddr: *manager,
		WorkDir:     *workdir,
		Capacity:    taskvine.Resources{Cores: *cores, Memory: *memory, Disk: *disk},
		ID:          *id,
		Libraries:   []*taskvine.Library{builtinLibrary()},
		Logger:      log.New(os.Stderr, "", log.LstdFlags),
	})
	if err != nil {
		log.Fatalf("vine-worker: %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		cancel()
	}()
	log.Printf("vine-worker %s connecting to %s", w.ID(), *manager)
	if err := w.Run(ctx); err != nil {
		log.Fatalf("vine-worker: %v", err)
	}
}

// builtinLibrary provides basic serverless functions so FunctionCall tasks
// can be exercised against stock workers.
func builtinLibrary() *taskvine.Library {
	return &taskvine.Library{
		Name: "builtin",
		Functions: map[string]taskvine.Function{
			// echo returns its arguments verbatim.
			"echo": func(args []byte) ([]byte, error) { return args, nil },
			// sleep pauses for {"seconds": N} and reports the host.
			"sleep": func(args []byte) ([]byte, error) {
				var req struct {
					Seconds float64 `json:"seconds"`
				}
				if err := json.Unmarshal(args, &req); err != nil {
					return nil, err
				}
				time.Sleep(time.Duration(req.Seconds * float64(time.Second)))
				host, _ := os.Hostname()
				return json.Marshal(fmt.Sprintf("slept %.2fs on %s", req.Seconds, host))
			},
		},
	}
}

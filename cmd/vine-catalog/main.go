// Command vine-catalog runs a standalone catalog server: managers advertise
// themselves to it, and vine-status -catalog lists them.
//
// Usage:
//
//	vine-catalog [-listen ADDR] [-ttl DURATION]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"taskvine/internal/catalog"
)

func main() {
	var (
		listen = flag.String("listen", "127.0.0.1:9097", "address to serve on")
		ttl    = flag.Duration("ttl", time.Minute, "entry expiry without updates")
	)
	flag.Parse()
	s, err := catalog.NewServer(*listen, *ttl)
	if err != nil {
		log.Fatalf("vine-catalog: %v", err)
	}
	fmt.Printf("catalog serving on %s (ttl %s)\n", s.Addr(), *ttl)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	s.Close()
}

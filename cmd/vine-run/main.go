// Command vine-run executes a JSON-declared workflow on a TaskVine manager,
// optionally spawning local workers for self-contained runs.
//
// Usage:
//
//	vine-run [-workers N] [-shards N] [-listen ADDR] workflow.json
//
// The workflow document declares files and tasks:
//
//	{
//	  "files": [
//	    {"name": "archive", "type": "url",   "source": "https://...", "cache": "worker"},
//	    {"name": "sw",      "type": "untar", "of": "archive",         "cache": "worker"},
//	    {"name": "query",   "type": "buffer","content": "ACGT",       "cache": "task"},
//	    {"name": "out",     "type": "temp"}
//	  ],
//	  "tasks": [
//	    {"command": "sw/bin/tool < query > result",
//	     "inputs":  [{"file": "sw", "name": "sw"}, {"file": "query", "name": "query"}],
//	     "outputs": [{"file": "out", "name": "result"}],
//	     "cores": 1, "env": {"KEY": "VALUE"}, "retries": 2}
//	  ]
//	}
//
// File types: local, url, buffer, temp, untar, gunzip. Cache levels:
// task, workflow (default), worker.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"taskvine"
)

type fileDecl struct {
	Name    string `json:"name"`
	Type    string `json:"type"`
	Source  string `json:"source,omitempty"`
	Content string `json:"content,omitempty"`
	Cache   string `json:"cache,omitempty"`
	Of      string `json:"of,omitempty"` // input of untar/gunzip
}

type mountDecl struct {
	File string `json:"file"`
	Name string `json:"name"`
}

type taskDecl struct {
	Command string            `json:"command"`
	Inputs  []mountDecl       `json:"inputs,omitempty"`
	Outputs []mountDecl       `json:"outputs,omitempty"`
	Env     map[string]string `json:"env,omitempty"`
	Cores   int               `json:"cores,omitempty"`
	Memory  int64             `json:"memory,omitempty"`
	Disk    int64             `json:"disk,omitempty"`
	Retries int               `json:"retries,omitempty"`
	Repeat  int               `json:"repeat,omitempty"`
	// Workflow labels the task's DAG for shard-affinity routing; Tenant
	// names its fair-share bucket. Both matter only with -shards > 1.
	Workflow string `json:"workflow,omitempty"`
	Tenant   string `json:"tenant,omitempty"`
}

type workflowDecl struct {
	Files []fileDecl `json:"files"`
	Tasks []taskDecl `json:"tasks"`
}

func main() {
	var (
		workers = flag.Int("workers", 2, "local workers to spawn (0 = external workers only)")
		listen  = flag.String("listen", "", "manager listen address (default loopback)")
		verbose = flag.Bool("v", false, "log task results as they complete")
		status  = flag.String("status", "", "also serve the monitoring endpoint on this address (e.g. 127.0.0.1:9123)")
		shards  = flag.Int("shards", 1, "manager event-loop shards (parallel dispatch; workers spread round-robin)")
		quota   = flag.Int("tenant-quota", 0, "per-tenant in-flight submission quota (0 = unlimited; needs -shards > 1)")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *workers, *listen, *verbose, *status, *shards, *quota); err != nil {
		log.Fatalf("vine-run: %v", err)
	}
}

func run(path string, nworkers int, listen string, verbose bool, statusAddr string, shards, quota int) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var wf workflowDecl
	if err := json.Unmarshal(raw, &wf); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}

	m, err := taskvine.NewManager(taskvine.ManagerConfig{
		ListenAddr:  listen,
		Shards:      shards,
		TenantQuota: quota,
	})
	if err != nil {
		return err
	}
	defer m.Close()
	addrs := m.ShardAddrs()
	if len(addrs) > 1 {
		fmt.Printf("manager listening on %s (%d shards: %s)\n", m.Addr(), len(addrs), strings.Join(addrs, " "))
	} else {
		fmt.Printf("manager listening on %s\n", m.Addr())
	}
	if statusAddr != "" {
		addr, err := m.ServeStatus(statusAddr)
		if err != nil {
			return err
		}
		fmt.Printf("status endpoint on http://%s/status (vine-status %s)\n", addr, addr)
		fmt.Printf("metrics at http://%s/metrics, scheduling tables at http://%s/debug/vine\n", addr, addr)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	// Stop local workers after the workflow finishes (LIFO: cancel first,
	// then wait).
	defer func() {
		cancel()
		wg.Wait()
	}()
	tmp, err := os.MkdirTemp("", "vine-run-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	for i := 0; i < nworkers; i++ {
		w, err := taskvine.NewWorker(taskvine.WorkerConfig{
			ManagerAddr: addrs[i%len(addrs)],
			WorkDir:     filepath.Join(tmp, fmt.Sprintf("w%d", i)),
			Capacity:    taskvine.Resources{Cores: 4, Memory: 4 * taskvine.GB, Disk: taskvine.GB},
			ID:          fmt.Sprintf("local-%d", i),
		})
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}

	files, err := declareFiles(m, wf.Files)
	if err != nil {
		return err
	}
	submitted := 0
	for _, td := range wf.Tasks {
		n := td.Repeat
		if n <= 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			t := taskvine.NewTask(td.Command)
			for _, in := range td.Inputs {
				f, ok := files[in.File]
				if !ok {
					return fmt.Errorf("task references undeclared file %q", in.File)
				}
				t.AddInput(f, in.Name)
			}
			for _, out := range td.Outputs {
				f, ok := files[out.File]
				if !ok {
					return fmt.Errorf("task references undeclared file %q", out.File)
				}
				t.AddOutput(f, out.Name)
			}
			for k, v := range td.Env {
				t.SetEnv(k, v)
			}
			t.SetResources(taskvine.Resources{Cores: td.Cores, Memory: td.Memory, Disk: td.Disk})
			t.SetRetries(td.Retries)
			if td.Workflow != "" {
				t.SetWorkflow(td.Workflow)
			}
			if td.Tenant != "" {
				t.SetTenant(td.Tenant)
			}
			if _, err := m.Submit(t); err != nil {
				return err
			}
			submitted++
		}
	}

	okCount, failCount := 0, 0
	for i := 0; i < submitted; i++ {
		r, err := m.Wait(context.Background())
		if err != nil {
			return err
		}
		if r.OK {
			okCount++
		} else {
			failCount++
		}
		if verbose || !r.OK {
			fmt.Println(taskvine.ResultString(r))
		}
	}
	fmt.Printf("workflow complete: %d ok, %d failed\n", okCount, failCount)
	if failCount > 0 {
		return fmt.Errorf("%d task(s) failed", failCount)
	}
	return nil
}

func declareFiles(m *taskvine.Manager, decls []fileDecl) (map[string]taskvine.File, error) {
	files := make(map[string]taskvine.File)
	cacheLevel := func(s string) (taskvine.CacheLevel, error) {
		switch s {
		case "task":
			return taskvine.CacheTask, nil
		case "", "workflow":
			return taskvine.CacheWorkflow, nil
		case "worker":
			return taskvine.CacheWorker, nil
		default:
			return 0, fmt.Errorf("unknown cache level %q", s)
		}
	}
	for _, d := range decls {
		level, err := cacheLevel(d.Cache)
		if err != nil {
			return nil, fmt.Errorf("file %q: %w", d.Name, err)
		}
		var f taskvine.File
		switch d.Type {
		case "local":
			f, err = m.DeclareFile(d.Source, level)
		case "url":
			f, err = m.DeclareURL(d.Source, level)
		case "buffer":
			f = m.DeclareBuffer([]byte(d.Content), level)
		case "temp":
			f = m.DeclareTemp()
		case "untar", "gunzip":
			of, ok := files[d.Of]
			if !ok {
				return nil, fmt.Errorf("file %q: %q must be declared first", d.Name, d.Of)
			}
			if d.Type == "untar" {
				f, err = m.DeclareUntar(of, level)
			} else {
				f, err = m.DeclareGunzip(of, level)
			}
		default:
			return nil, fmt.Errorf("file %q: unknown type %q", d.Name, d.Type)
		}
		if err != nil {
			return nil, fmt.Errorf("file %q: %w", d.Name, err)
		}
		files[d.Name] = f
	}
	return files, nil
}

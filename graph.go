package taskvine

// Graph is a higher-level, dataflow-style interface layered on the Manager,
// in the spirit of the Parsl and Dask integrations discussed in §6 of the
// paper: each node is one TaskVine task, edges are files, and the graph
// wires producers to consumers through in-cluster temp files automatically,
// so intermediate data never moves through the application.
//
// Nodes are declared before running; Run submits every node whose
// dependencies are met and streams completions until the graph drains.
//
//	g := taskvine.NewGraph(m)
//	a := g.Command("make part A > out", taskvine.WithOutput("out"))
//	b := g.Command("make part B > out", taskvine.WithOutput("out"))
//	c := g.Command("cat a b > merged",
//		taskvine.WithInput(a.Output("out"), "a"),
//		taskvine.WithInput(b.Output("out"), "b"),
//		taskvine.WithOutput("merged"))
//	err := g.Run(ctx)
//	data, _ := g.Fetch(ctx, c.Output("merged"))

import (
	"context"
	"fmt"
	"sort"
)

// Node is one task in a Graph.
type Node struct {
	g       *Graph
	id      int // graph-local index
	task    *Task
	outputs map[string]File
	deps    map[int]bool

	submitted bool
	done      bool
	result    *Result
}

// NodeOption configures a node at declaration.
type NodeOption func(*Node)

// WithInput mounts a file (typically another node's Output) under name.
// Dependencies on producing nodes are inferred automatically.
func WithInput(f File, name string) NodeOption {
	return func(n *Node) {
		n.task.AddInput(f, name)
		if producer, ok := n.g.producers[f.ID()]; ok {
			n.deps[producer] = true
		}
	}
}

// WithOutput declares that the node produces the sandbox file name; it is
// stored as an in-cluster temp and retrievable via Node.Output(name).
func WithOutput(name string) NodeOption {
	return func(n *Node) {
		f := n.g.m.DeclareTemp()
		n.task.AddOutput(f, name)
		n.outputs[name] = f
		n.g.producers[f.ID()] = n.id
	}
}

// WithLocalOutput declares an output that the manager writes back to the
// given shared-filesystem path when the node completes (a workflow's final
// output, Figure 2).
func WithLocalOutput(name, path string) NodeOption {
	return func(n *Node) {
		f, err := n.g.m.DeclareFile(path, CacheWorkflow)
		if err != nil {
			n.g.deferErr(fmt.Errorf("graph: local output %s: %w", path, err))
			return
		}
		n.task.AddOutput(f, name)
		n.outputs[name] = f
	}
}

// WithEnv sets an environment variable on the node's task.
func WithEnv(key, value string) NodeOption {
	return func(n *Node) { n.task.SetEnv(key, value) }
}

// WithResources sets the node's resource allocation.
func WithResources(r Resources) NodeOption {
	return func(n *Node) { n.task.SetResources(r) }
}

// WithRetries sets the node's retry budget.
func WithRetries(k int) NodeOption {
	return func(n *Node) { n.task.SetRetries(k) }
}

// After adds an explicit ordering dependency without a data edge.
func After(deps ...*Node) NodeOption {
	return func(n *Node) {
		for _, d := range deps {
			n.deps[d.id] = true
		}
	}
}

// Graph is a DAG of tasks executed through a Manager.
type Graph struct {
	m         *Manager
	nodes     []*Node
	producers map[string]int // temp file ID -> producing node
	errs      []error
	ran       bool
}

// NewGraph creates an empty graph over the manager.
func NewGraph(m *Manager) *Graph {
	return &Graph{m: m, producers: make(map[string]int)}
}

func (g *Graph) deferErr(err error) { g.errs = append(g.errs, err) }

// Command adds a command-line task node.
func (g *Graph) Command(cmd string, opts ...NodeOption) *Node {
	return g.add(NewTask(cmd), opts)
}

// FunctionCall adds a serverless function-call node (§3.4).
func (g *Graph) FunctionCall(library, function string, args []byte, opts ...NodeOption) *Node {
	return g.add(NewFunctionCall(library, function, args), opts)
}

func (g *Graph) add(t *Task, opts []NodeOption) *Node {
	n := &Node{
		g:       g,
		id:      len(g.nodes),
		task:    t,
		outputs: make(map[string]File),
		deps:    make(map[int]bool),
	}
	g.nodes = append(g.nodes, n)
	for _, opt := range opts {
		opt(n)
	}
	return n
}

// Output returns the file handle a node produces under the given sandbox
// name. It panics on unknown names: referencing an undeclared output is a
// programming error caught at graph construction.
func (n *Node) Output(name string) File {
	f, ok := n.outputs[name]
	if !ok {
		panic(fmt.Sprintf("graph: node %d has no output %q", n.id, name))
	}
	return f
}

// Result returns the node's completion result, valid after Run.
func (n *Node) Result() *Result { return n.result }

// validate rejects cycles and collects deferred construction errors.
func (g *Graph) validate() error {
	if len(g.errs) > 0 {
		return g.errs[0]
	}
	// Kahn's algorithm to confirm acyclicity.
	indeg := make([]int, len(g.nodes))
	for _, n := range g.nodes {
		indeg[n.id] = len(n.deps)
	}
	var queue []int
	for id, d := range indeg {
		if d == 0 {
			queue = append(queue, id)
		}
	}
	seen := 0
	adj := make(map[int][]int)
	for _, n := range g.nodes {
		for dep := range n.deps {
			adj[dep] = append(adj[dep], n.id)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		seen++
		next := adj[id]
		sort.Ints(next)
		for _, succ := range next {
			indeg[succ]--
			if indeg[succ] == 0 {
				queue = append(queue, succ)
			}
		}
	}
	if seen != len(g.nodes) {
		return fmt.Errorf("graph: dependency cycle among %d node(s)", len(g.nodes)-seen)
	}
	return nil
}

// Run executes the graph to completion: nodes are submitted as their
// dependencies finish, and failures propagate (a node whose dependency
// failed is not run). Run returns the first failure, after draining
// whatever could still complete.
func (g *Graph) Run(ctx context.Context) error {
	if g.ran {
		return fmt.Errorf("graph: already run")
	}
	g.ran = true
	if err := g.validate(); err != nil {
		return err
	}
	byTaskID := make(map[int]*Node)
	pending := 0
	var firstErr error

	submitReady := func() error {
		for _, n := range g.nodes {
			if n.submitted || n.done {
				continue
			}
			ready := true
			for dep := range n.deps {
				d := g.nodes[dep]
				if !d.done {
					ready = false
					break
				}
				if d.result == nil || !d.result.OK {
					// Dependency failed: this node can never run.
					n.done = true
					n.result = &Result{OK: false, Error: fmt.Sprintf("graph: dependency node %d failed", dep)}
					if firstErr == nil {
						firstErr = fmt.Errorf("graph: node %d skipped: dependency failed", n.id)
					}
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			id, err := g.m.Submit(n.task)
			if err != nil {
				return fmt.Errorf("graph: submitting node %d: %w", n.id, err)
			}
			n.submitted = true
			byTaskID[id] = n
			pending++
		}
		return nil
	}

	if err := submitReady(); err != nil {
		return err
	}
	for pending > 0 {
		r, err := g.m.Wait(ctx)
		if err != nil {
			return err
		}
		n, ok := byTaskID[r.TaskID]
		if !ok {
			continue // a non-graph task sharing the manager
		}
		delete(byTaskID, r.TaskID)
		pending--
		n.done = true
		n.result = r
		if !r.OK && firstErr == nil {
			firstErr = fmt.Errorf("graph: node %d failed: %s", n.id, r.Error)
		}
		if err := submitReady(); err != nil {
			return err
		}
	}
	// Mark never-submitted nodes (all ancestors failed) as done-failed.
	for _, n := range g.nodes {
		if !n.done && !n.submitted {
			n.done = true
			n.result = &Result{OK: false, Error: "graph: not run (dependency failure)"}
		}
	}
	return firstErr
}

// Fetch retrieves a node output's content back to the application.
func (g *Graph) Fetch(ctx context.Context, f File) ([]byte, error) {
	return g.m.FetchFile(ctx, f)
}

// Len returns the number of nodes.
func (g *Graph) Len() int { return len(g.nodes) }

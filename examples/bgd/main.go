// BGD: serverless batch gradient descent (§4.2, Figures 12c/f).
//
// A Library containing the training step is installed once per worker; its
// expensive Boot (loading the dataset into memory) runs once per worker
// instead of once per task. FunctionCall tasks then run many descents over
// random initial models with near-zero startup cost.
//
//	go run ./examples/bgd
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"taskvine"
)

const (
	numWorkers = 3
	numRuns    = 24
)

// dataset is the regression target y = 3x + 7 with noise, "loaded" by the
// library boot.
var (
	datasetOnce sync.Once
	datasetX    []float64
	datasetY    []float64
	boots       atomic.Int64
)

func loadDataset() {
	datasetOnce.Do(func() {
		for i := 0; i < 2000; i++ {
			x := float64(i%100) / 10
			noise := math.Sin(float64(i)) * 0.1
			datasetX = append(datasetX, x)
			datasetY = append(datasetY, 3*x+7+noise)
		}
	})
}

type bgdArgs struct {
	W0    float64 `json:"w0"`
	B0    float64 `json:"b0"`
	Iters int     `json:"iters"`
	LR    float64 `json:"lr"`
}

type bgdResult struct {
	W, B, Loss float64
}

func bgdLibrary() *taskvine.Library {
	return &taskvine.Library{
		Name: "bgd",
		Boot: func() error {
			boots.Add(1)
			loadDataset() // the once-per-worker startup cost
			return nil
		},
		Functions: map[string]taskvine.Function{
			"descend": func(raw []byte) ([]byte, error) {
				var a bgdArgs
				if err := json.Unmarshal(raw, &a); err != nil {
					return nil, err
				}
				w, b := a.W0, a.B0
				n := float64(len(datasetX))
				for it := 0; it < a.Iters; it++ {
					var gw, gb float64
					for i := range datasetX {
						e := w*datasetX[i] + b - datasetY[i]
						gw += e * datasetX[i]
						gb += e
					}
					w -= a.LR * gw / n
					b -= a.LR * gb / n
				}
				var loss float64
				for i := range datasetX {
					e := w*datasetX[i] + b - datasetY[i]
					loss += e * e
				}
				return json.Marshal(bgdResult{W: w, B: b, Loss: loss / n})
			},
		},
	}
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	m, err := taskvine.NewManager(taskvine.ManagerConfig{})
	if err != nil {
		return err
	}
	defer m.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	defer func() { cancel(); wg.Wait() }()
	tmp, err := os.MkdirTemp("", "bgd-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	for i := 0; i < numWorkers; i++ {
		w, err := taskvine.NewWorker(taskvine.WorkerConfig{
			ManagerAddr: m.Addr(),
			WorkDir:     filepath.Join(tmp, fmt.Sprintf("w%d", i)),
			Capacity:    taskvine.Resources{Cores: 4, Memory: 2 * taskvine.GB, Disk: taskvine.GB},
			ID:          fmt.Sprintf("w%d", i),
			Libraries:   []*taskvine.Library{bgdLibrary()},
		})
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() { defer wg.Done(); w.Run(ctx) }()
	}

	// Install the library: one instance per worker, each holding a static
	// core (§3.4).
	m.InstallLibrary("bgd", taskvine.Resources{Cores: 1})

	// 24 descents from different random initial models.
	for i := 0; i < numRuns; i++ {
		args, _ := json.Marshal(bgdArgs{
			W0:    float64(i%7) - 3,
			B0:    float64(i%11) - 5,
			Iters: 2500,
			LR:    0.02,
		})
		fc := taskvine.NewFunctionCall("bgd", "descend", args)
		fc.SetCategory("bgd")
		if _, err := m.Submit(fc); err != nil {
			return err
		}
	}

	best := bgdResult{Loss: math.Inf(1)}
	for i := 0; i < numRuns; i++ {
		r, err := m.Wait(context.Background())
		if err != nil {
			return err
		}
		if !r.OK {
			return fmt.Errorf("function call %d failed: %s", r.TaskID, r.Error)
		}
		var res bgdResult
		if err := json.Unmarshal(r.Output, &res); err != nil {
			return err
		}
		if res.Loss < best.Loss {
			best = res
		}
	}
	fmt.Printf("best model after %d BGD runs: y = %.3fx + %.3f (loss %.4f)\n",
		numRuns, best.W, best.B, best.Loss)
	fmt.Printf("library booted %d times for %d calls on %d workers — startup paid once per worker, not once per task (§3.4)\n",
		boots.Load(), numRuns, numWorkers)
	if best.W < 2.5 || best.W > 3.5 {
		return fmt.Errorf("descent did not converge: %+v", best)
	}
	return nil
}

// TopEFT: a map-accumulate physics analysis using in-cluster storage.
//
// Processing tasks turn dataset chunks into partial histograms held as
// ephemeral temp files that never leave the cluster; accumulation tasks
// merge them in a reduction tree; only the single final histogram is
// fetched back (§4.2, Figure 13b). The run prints how many bytes moved
// through the manager versus between workers.
//
//	go run ./examples/topeft
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"taskvine"
	"taskvine/internal/trace"
)

const (
	numWorkers = 3
	numChunks  = 9
	fanIn      = 3
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	m, err := taskvine.NewManager(taskvine.ManagerConfig{})
	if err != nil {
		return err
	}
	defer m.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	defer func() { cancel(); wg.Wait() }()
	tmp, err := os.MkdirTemp("", "topeft-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	for i := 0; i < numWorkers; i++ {
		w, err := taskvine.NewWorker(taskvine.WorkerConfig{
			ManagerAddr: m.Addr(),
			WorkDir:     filepath.Join(tmp, fmt.Sprintf("w%d", i)),
			Capacity:    taskvine.Resources{Cores: 4, Memory: 2 * taskvine.GB, Disk: taskvine.GB},
			ID:          fmt.Sprintf("w%d", i),
		})
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() { defer wg.Done(); w.Run(ctx) }()
	}

	// "Processing": each chunk of collision events becomes a partial
	// histogram — here, per-value counts over a synthetic event stream.
	level := make([]taskvine.File, 0, numChunks)
	waitFor := 0
	for i := 0; i < numChunks; i++ {
		var events strings.Builder
		for e := 0; e < 200; e++ {
			fmt.Fprintf(&events, "%d\n", (i*7+e*13)%10)
		}
		chunk := m.DeclareBuffer([]byte(events.String()), taskvine.CacheTask)
		hist := m.DeclareTemp()
		t := taskvine.NewTask("sort events | uniq -c | awk '{print $2, $1}' > hist")
		t.AddInput(chunk, "events")
		t.AddOutput(hist, "hist")
		t.SetCategory("process")
		if _, err := m.Submit(t); err != nil {
			return err
		}
		waitFor++
		level = append(level, hist)
	}

	// "Accumulation": merge partial histograms fan-in at a time; the
	// merged outputs are again temps and stay wherever they were produced.
	for len(level) > 1 {
		var next []taskvine.File
		for i := 0; i < len(level); i += fanIn {
			j := i + fanIn
			if j > len(level) {
				j = len(level)
			}
			group := level[i:j]
			out := m.DeclareTemp()
			t := taskvine.NewTask("cat h* | awk '{c[$1]+=$2} END {for (k in c) print k, c[k]}' | sort -n > merged")
			for k, h := range group {
				t.AddInput(h, fmt.Sprintf("h%d", k))
			}
			t.AddOutput(out, "merged")
			t.SetCategory("accumulate")
			if _, err := m.Submit(t); err != nil {
				return err
			}
			waitFor++
			next = append(next, out)
		}
		level = next
	}
	final := level[0]

	for i := 0; i < waitFor; i++ {
		r, err := m.Wait(context.Background())
		if err != nil {
			return err
		}
		if !r.OK {
			return fmt.Errorf("task %d failed: %s (output %q)", r.TaskID, r.Error, r.Output)
		}
	}

	// Only the final accumulated histogram leaves the cluster.
	data, err := m.FetchFile(context.Background(), final)
	if err != nil {
		return err
	}
	fmt.Printf("final histogram (%d tasks):\n%s", waitFor, data)
	total := 0
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		f := strings.Fields(line)
		if len(f) == 2 {
			n, _ := strconv.Atoi(f[1])
			total += n
		}
	}
	fmt.Printf("total events accumulated: %d (expect %d)\n", total, numChunks*200)

	sum := trace.Summarize(m.Trace().Events())
	var viaWorkers int64
	for src, b := range sum.BytesBySource {
		if strings.HasPrefix(src, "worker:") {
			viaWorkers += b
		}
	}
	fmt.Printf("bytes moved worker-to-worker: %d; via manager: %d\n",
		viaWorkers, sum.BytesBySource["manager"])
	fmt.Println("partial histograms never left the cluster (Figure 13b)")
	return nil
}

// Quickstart: a self-contained TaskVine workflow on one machine.
//
// A manager and two workers start in-process, ten command tasks run with a
// shared buffer input, and results stream back as they complete.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"taskvine"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	m, err := taskvine.NewManager(taskvine.ManagerConfig{})
	if err != nil {
		return err
	}
	defer m.Close()
	fmt.Printf("manager on %s\n", m.Addr())

	// Spawn two local workers. In a cluster deployment these are
	// `vine-worker` processes submitted as batch jobs (§4).
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	defer func() { cancel(); wg.Wait() }()
	tmp, err := os.MkdirTemp("", "quickstart-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	for i := 0; i < 2; i++ {
		w, err := taskvine.NewWorker(taskvine.WorkerConfig{
			ManagerAddr: m.Addr(),
			WorkDir:     filepath.Join(tmp, fmt.Sprintf("worker%d", i)),
			Capacity:    taskvine.Resources{Cores: 4, Memory: 2 * taskvine.GB, Disk: taskvine.GB},
			ID:          fmt.Sprintf("worker%d", i),
		})
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() { defer wg.Done(); w.Run(ctx) }()
	}

	// One shared input, declared once, cached at every worker that needs
	// it; ten tasks consume it.
	shared := m.DeclareBuffer([]byte("the quick brown fox"), taskvine.CacheWorkflow)
	const n = 10
	for i := 0; i < n; i++ {
		t := taskvine.NewTask(fmt.Sprintf("echo task %d: $(wc -w < words) words", i))
		t.AddInput(shared, "words")
		t.SetResources(taskvine.Resources{Cores: 1})
		if _, err := m.Submit(t); err != nil {
			return err
		}
	}

	for i := 0; i < n; i++ {
		r, err := m.Wait(context.Background())
		if err != nil {
			return err
		}
		fmt.Printf("%s -> %s", taskvine.ResultString(r), r.Output)
	}
	return nil
}

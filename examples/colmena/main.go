// Colmena: worker-to-worker software distribution, shown in simulation
// (§4.2, Figures 12b/e).
//
// The molecular-design workload's 1.4 GB software environment lives on the
// shared filesystem. This example runs the same workload twice through the
// discrete-event simulator (which drives the production scheduling policy):
// once with worker transfers disabled — every worker queries the shared FS —
// and once with the managed limit of 3, where only a handful of workers
// touch the FS and peers supply the rest. This regenerates the paper's
// "108 queries reduced to 3" observation.
//
//	go run ./examples/colmena
package main

import (
	"fmt"
	"strings"

	"taskvine/internal/policy"
	"taskvine/internal/sim"
	"taskvine/internal/trace"
	"taskvine/internal/workloads"
)

func main() {
	cfg := workloads.DefaultColmena()
	// A modest scale keeps the run instant; shapes are identical at the
	// paper's 108 workers (pass -scale 1.0 to vine-bench fig12-colmena).
	cfg.Workers = 27
	cfg.InferenceTasks = 57
	cfg.SimulationTasks = 250

	run := func(label string, limits policy.Limits) trace.Summary {
		c := sim.NewCluster(workloads.Colmena(cfg), sim.DefaultParams(), limits)
		makespan := c.Run()
		s := trace.Summarize(c.Trace().Events())
		var peer int64
		for src, n := range s.TransfersBySource {
			if strings.HasPrefix(src, "worker:") {
				peer += n
			}
		}
		fmt.Printf("%-22s makespan %7.1fs  shared-FS fetches %3d  peer transfers %3d\n",
			label, makespan, s.TransfersBySource["shared-fs"], peer)
		return s
	}

	fmt.Printf("colmena-xtb: %d tasks, %d workers, %.0f MB software environment\n\n",
		cfg.InferenceTasks+cfg.SimulationTasks, cfg.Workers, cfg.EnvTarMB)
	without := run("without w2w transfers", policy.Limits{
		WorkerSource: policy.Disabled, URLSource: policy.Unlimited})
	with := run("with w2w (limit 3)", policy.Limits{WorkerSource: 3, URLSource: 3})

	fmt.Printf("\nshared filesystem load: %d fetches -> %d (the paper's 108 -> 3 at full scale)\n",
		without.TransfersBySource["shared-fs"], with.TransfersBySource["shared-fs"])
	fmt.Println("worker-to-worker transfers shift I/O pressure from the shared FS to the cluster network (§4.2)")
}

// BLAST: the paper's running example (Figure 3), executed for real.
//
// A synthetic archival HTTP server stands in for the NCBI archive: it
// serves a compressed "blast" software package and a "landmark" reference
// database. Each of the query tasks mounts the unpacked software and
// database — produced once per worker by declare-untar MiniTasks — plus a
// unique query buffer. The workflow then runs a second time to demonstrate
// persistent caching: the archive is not contacted again (Figure 9's hot
// cache).
//
//	go run ./examples/blast
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"taskvine"
	"taskvine/internal/httpsource"
)

const (
	numWorkers = 3
	numQueries = 12
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The "archival source": deterministic synthetic tarballs with the
	// HTTP metadata TaskVine's content-addressable naming consumes.
	software, err := httpsource.Tarball(map[string][]byte{
		"bin/blast": []byte("#!/bin/sh\n# toy matcher: count query hits in the database\ngrep -c \"$(cat \"$2\")\" \"$1\" || true\n"),
	})
	if err != nil {
		return err
	}
	db, err := httpsource.Tarball(map[string][]byte{
		"landmark.db": []byte(strings.Repeat("ACGTACGGTTCA\nGGCATTACGATC\nTTACGGATTCAG\n", 200)),
	})
	if err != nil {
		return err
	}
	archive := httpsource.New(
		&httpsource.Object{Path: "/blast.tar.gz", Content: software},
		&httpsource.Object{Path: "/landmark.tar.gz", Content: db},
	)
	defer archive.Close()

	m, err := taskvine.NewManager(taskvine.ManagerConfig{})
	if err != nil {
		return err
	}
	defer m.Close()

	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	defer func() { cancel(); wg.Wait() }()
	tmp, err := os.MkdirTemp("", "blast-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	for i := 0; i < numWorkers; i++ {
		w, err := taskvine.NewWorker(taskvine.WorkerConfig{
			ManagerAddr: m.Addr(),
			WorkDir:     filepath.Join(tmp, fmt.Sprintf("w%d", i)),
			Capacity:    taskvine.Resources{Cores: 4, Memory: 2 * taskvine.GB, Disk: taskvine.GB},
			ID:          fmt.Sprintf("w%d", i),
		})
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() { defer wg.Done(); w.Run(ctx) }()
	}

	// Mirror of Figure 3: software cached at worker lifetime (reused by
	// future workflows), database likewise, per-task queries ephemeral.
	blastURL, err := m.DeclareURL(archive.URL("/blast.tar.gz"), taskvine.CacheWorker)
	if err != nil {
		return err
	}
	blast, err := m.DeclareUntar(blastURL, taskvine.CacheWorker)
	if err != nil {
		return err
	}
	landURL, err := m.DeclareURL(archive.URL("/landmark.tar.gz"), taskvine.CacheWorker)
	if err != nil {
		return err
	}
	land, err := m.DeclareUntar(landURL, taskvine.CacheWorker)
	if err != nil {
		return err
	}

	queries := []string{"ACGTACGGTTCA", "GGCATTACGATC", "TTACGGATTCAG", "AAAAAAAAAAAA"}
	runWorkflow := func(label string) error {
		t0 := time.Now()
		for i := 0; i < numQueries; i++ {
			query := m.DeclareBuffer([]byte(queries[i%len(queries)]), taskvine.CacheTask)
			t := taskvine.NewTask("sh blast/bin/blast landmark/landmark.db query")
			t.AddInput(query, "query")
			t.AddInput(blast, "blast")
			t.AddInput(land, "landmark")
			t.SetEnv("BLASTDB", "landmark")
			t.SetResources(taskvine.Resources{Cores: 1})
			if _, err := m.Submit(t); err != nil {
				return err
			}
		}
		hits := 0
		for i := 0; i < numQueries; i++ {
			r, err := m.Wait(context.Background())
			if err != nil {
				return err
			}
			if !r.OK {
				return fmt.Errorf("task %d failed: %s (output %q)", r.TaskID, r.Error, r.Output)
			}
			n := strings.TrimSpace(string(r.Output))
			if n != "0" && n != "" {
				hits++
			}
		}
		fmt.Printf("%s: %d queries (%d with hits) in %v; archive fetches so far: blast=%d landmark=%d\n",
			label, numQueries, hits, time.Since(t0).Round(time.Millisecond),
			archive.Fetches("/blast.tar.gz"), archive.Fetches("/landmark.tar.gz"))
		return nil
	}

	if err := runWorkflow("cold cache"); err != nil {
		return err
	}
	// Conclude the workflow: ephemeral data is evicted, but the software
	// and database persist on workers (cache=worker).
	m.EndWorkflow()
	if err := runWorkflow("hot cache "); err != nil {
		return err
	}
	fmt.Println("note: the second run contacted the archive zero additional times —")
	fmt.Println("content-addressable worker-lifetime caching at work (§3.2, Figure 9)")
	return nil
}

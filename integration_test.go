package taskvine

// End-to-end integration tests: a real manager and real workers speaking
// the wire protocol over localhost TCP, executing real commands in real
// sandboxes — the full production code path at laptop scale.

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"taskvine/internal/httpsource"
)

// cluster spins up a manager and n workers for a test.
type cluster struct {
	m       *Manager
	workers []*Worker
	cancel  context.CancelFunc
	wg      sync.WaitGroup
}

func startCluster(t *testing.T, n int, libs []*Library) *cluster {
	t.Helper()
	m, err := NewManager(ManagerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	c := &cluster{m: m, cancel: cancel}
	for i := 0; i < n; i++ {
		w, err := NewWorker(WorkerConfig{
			ManagerAddr: m.Addr(),
			WorkDir:     filepath.Join(t.TempDir(), fmt.Sprintf("w%d", i)),
			Capacity:    Resources{Cores: 4, Memory: 4 * GB, Disk: GB},
			ID:          fmt.Sprintf("w%d", i),
			Libraries:   libs,
		})
		if err != nil {
			t.Fatal(err)
		}
		c.workers = append(c.workers, w)
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			w.Run(ctx)
		}()
	}
	t.Cleanup(func() {
		m.Close()
		cancel()
		c.wg.Wait()
	})
	return c
}

func waitN(t *testing.T, m *Manager, n int) []*Result {
	t.Helper()
	out := make([]*Result, 0, n)
	for len(out) < n {
		r, err := m.WaitTimeout(30 * time.Second)
		if err != nil {
			t.Fatalf("waited for %d results, got %d: %v", n, len(out), err)
		}
		out = append(out, r)
	}
	return out
}

func TestSingleCommandTask(t *testing.T) {
	c := startCluster(t, 1, nil)
	task := NewTask("echo hello from taskvine")
	id, err := c.m.Submit(task)
	if err != nil {
		t.Fatal(err)
	}
	r := waitN(t, c.m, 1)[0]
	if r.TaskID != id || !r.OK || r.ExitCode != 0 {
		t.Fatalf("result = %+v", r)
	}
	if !strings.Contains(string(r.Output), "hello from taskvine") {
		t.Fatalf("output = %q", r.Output)
	}
	if !c.m.Empty() {
		t.Fatal("manager not empty after completion")
	}
}

func TestBufferInputAndTempOutput(t *testing.T) {
	c := startCluster(t, 1, nil)
	query := c.m.DeclareBuffer([]byte("ACGTACGT"), CacheTask)
	out := c.m.DeclareTemp()
	task := NewTask("tr A X < query > result.txt")
	task.AddInput(query, "query")
	task.AddOutput(out, "result.txt")
	if _, err := c.m.Submit(task); err != nil {
		t.Fatal(err)
	}
	r := waitN(t, c.m, 1)[0]
	if !r.OK {
		t.Fatalf("task failed: %s (output %q)", r.Error, r.Output)
	}
	// The temp output lives in the cluster; fetch it back explicitly.
	data, err := c.m.FetchFile(context.Background(), out)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "XCGTXCGT" {
		t.Fatalf("temp content = %q", data)
	}
}

func TestLocalFileOutputReturnsToSharedFS(t *testing.T) {
	c := startCluster(t, 1, nil)
	dest := filepath.Join(t.TempDir(), "outputs", "final.txt")
	// Declaring a not-yet-existing local file as an output destination:
	// declare the parent as the file will be created by the manager.
	// DeclareFile requires existence, so create a placeholder.
	os.MkdirAll(filepath.Dir(dest), 0o755)
	os.WriteFile(dest, nil, 0o644)
	outFile, err := c.m.DeclareFile(dest, CacheWorkflow)
	if err != nil {
		t.Fatal(err)
	}
	task := NewTask("printf 'final result' > out.txt")
	task.AddOutput(outFile, "out.txt")
	if _, err := c.m.Submit(task); err != nil {
		t.Fatal(err)
	}
	r := waitN(t, c.m, 1)[0]
	if !r.OK {
		t.Fatalf("task failed: %s", r.Error)
	}
	// The manager writes local outputs back asynchronously.
	deadline := time.Now().Add(10 * time.Second)
	for {
		b, _ := os.ReadFile(dest)
		if string(b) == "final result" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("output never landed in shared fs: %q", b)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestTaskChainThroughTemp(t *testing.T) {
	// Task 2 consumes task 1's temp output: the file moves (or stays)
	// within the cluster without touching the manager.
	c := startCluster(t, 2, nil)
	mid := c.m.DeclareTemp()
	final := c.m.DeclareTemp()

	t1 := NewTask("printf 'stage-one' > out")
	t1.AddOutput(mid, "out")
	if _, err := c.m.Submit(t1); err != nil {
		t.Fatal(err)
	}
	t2 := NewTask("sed s/one/two/ < in > out")
	t2.AddInput(mid, "in")
	t2.AddOutput(final, "out")
	if _, err := c.m.Submit(t2); err != nil {
		t.Fatal(err)
	}
	rs := waitN(t, c.m, 2)
	for _, r := range rs {
		if !r.OK {
			t.Fatalf("task %d failed: %s", r.TaskID, r.Error)
		}
	}
	data, err := c.m.FetchFile(context.Background(), final)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "stage-two" {
		t.Fatalf("final = %q", data)
	}
}

func TestURLInputAndUntarMiniTask(t *testing.T) {
	pkg, err := httpsource.Tarball(map[string][]byte{
		"bin/tool.sh": []byte("#!/bin/sh\necho tool-ran\n"),
		"data/ref":    []byte("reference-data"),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httpsource.New(&httpsource.Object{Path: "/pkg.tar", Content: pkg})
	defer srv.Close()

	c := startCluster(t, 2, nil)
	archive, err := c.m.DeclareURL(srv.URL("/pkg.tar"), CacheWorker)
	if err != nil {
		t.Fatal(err)
	}
	unpacked, err := c.m.DeclareUntar(archive, CacheWorker)
	if err != nil {
		t.Fatal(err)
	}

	// Several tasks share the single unpacked environment.
	const n = 6
	for i := 0; i < n; i++ {
		task := NewTask("cat pkg/data/ref && sh pkg/bin/tool.sh")
		task.AddInput(unpacked, "pkg")
		if _, err := c.m.Submit(task); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range waitN(t, c.m, n) {
		if !r.OK {
			t.Fatalf("task failed: %s (output %q)", r.Error, r.Output)
		}
		if !strings.Contains(string(r.Output), "reference-data") ||
			!strings.Contains(string(r.Output), "tool-ran") {
			t.Fatalf("output = %q", r.Output)
		}
	}
	// The archive was fetched from the URL a bounded number of times:
	// once per worker at most, not once per task.
	if f := srv.Fetches("/pkg.tar"); f > 2 {
		t.Fatalf("archive fetched %d times for %d tasks on 2 workers", f, n)
	}
}

func TestManyTasksAcrossWorkers(t *testing.T) {
	c := startCluster(t, 3, nil)
	const n = 30
	for i := 0; i < n; i++ {
		task := NewTask(fmt.Sprintf("echo task-%d", i))
		if _, err := c.m.Submit(task); err != nil {
			t.Fatal(err)
		}
	}
	rs := waitN(t, c.m, n)
	used := map[string]bool{}
	for _, r := range rs {
		if !r.OK {
			t.Fatalf("task failed: %+v", r)
		}
		used[r.Worker] = true
	}
	if len(used) < 2 {
		t.Fatalf("work not spread: only workers %v used", used)
	}
}

func TestFailingTaskReported(t *testing.T) {
	c := startCluster(t, 1, nil)
	task := NewTask("echo some diagnostics; exit 3")
	if _, err := c.m.Submit(task); err != nil {
		t.Fatal(err)
	}
	r := waitN(t, c.m, 1)[0]
	if r.OK || r.ExitCode != 3 {
		t.Fatalf("result = %+v", r)
	}
	if !strings.Contains(string(r.Output), "some diagnostics") {
		t.Fatalf("failure output lost: %q", r.Output)
	}
}

func TestMissingOutputFailsTask(t *testing.T) {
	c := startCluster(t, 1, nil)
	out := c.m.DeclareTemp()
	task := NewTask("true") // never creates the declared output
	task.AddOutput(out, "never.txt")
	if _, err := c.m.Submit(task); err != nil {
		t.Fatal(err)
	}
	r := waitN(t, c.m, 1)[0]
	if r.OK {
		t.Fatal("task with missing output reported OK")
	}
	if !strings.Contains(r.Error, "never.txt") {
		t.Fatalf("error does not name the missing output: %q", r.Error)
	}
}

func TestRetryOnFailure(t *testing.T) {
	c := startCluster(t, 1, nil)
	// A task that fails until its third attempt, tracked via a counter
	// file on the host filesystem.
	counter := filepath.Join(t.TempDir(), "attempts")
	task := NewTask(fmt.Sprintf(
		`n=$(cat %[1]s 2>/dev/null || echo 0); n=$((n+1)); echo $n > %[1]s; [ $n -ge 3 ]`, counter))
	task.SetRetries(5)
	if _, err := c.m.Submit(task); err != nil {
		t.Fatal(err)
	}
	r := waitN(t, c.m, 1)[0]
	if !r.OK {
		t.Fatalf("task failed despite retries: %+v", r)
	}
	b, _ := os.ReadFile(counter)
	if strings.TrimSpace(string(b)) != "3" {
		t.Fatalf("attempts = %q, want 3", b)
	}
}

func TestServerlessFunctionCalls(t *testing.T) {
	var bootMu sync.Mutex
	boots := 0
	lib := &Library{
		Name: "optimizer",
		Boot: func() error {
			bootMu.Lock()
			boots++
			bootMu.Unlock()
			return nil
		},
		Functions: map[string]Function{
			"gradient": func(args []byte) ([]byte, error) {
				var x float64
				if err := json.Unmarshal(args, &x); err != nil {
					return nil, err
				}
				return json.Marshal(2 * x)
			},
		},
	}
	c := startCluster(t, 2, []*Library{lib})
	c.m.InstallLibrary("optimizer", Resources{Cores: 1})

	const n = 20
	for i := 0; i < n; i++ {
		args, _ := json.Marshal(float64(i))
		fc := NewFunctionCall("optimizer", "gradient", args)
		if _, err := c.m.Submit(fc); err != nil {
			t.Fatal(err)
		}
	}
	sum := 0.0
	for _, r := range waitN(t, c.m, n) {
		if !r.OK {
			t.Fatalf("function call failed: %s", r.Error)
		}
		var v float64
		json.Unmarshal(r.Output, &v)
		sum += v
	}
	want := 0.0
	for i := 0; i < n; i++ {
		want += 2 * float64(i)
	}
	if sum != want {
		t.Fatalf("sum = %v want %v", sum, want)
	}
	// The serverless point: boots happen once per worker, not once per task.
	bootMu.Lock()
	defer bootMu.Unlock()
	if boots > 2 {
		t.Fatalf("library booted %d times for %d calls on 2 workers", boots, n)
	}
}

func TestWorkerLifetimeCachePersistsAcrossWorkflows(t *testing.T) {
	blob := httpsource.SyntheticBlob("dataset", 4096)
	srv := httpsource.New(&httpsource.Object{Path: "/data", Content: blob})
	defer srv.Close()

	c := startCluster(t, 1, nil)
	data, err := c.m.DeclareURL(srv.URL("/data"), CacheWorker)
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		task := NewTask("wc -c < data")
		task.AddInput(data, "data")
		if _, err := c.m.Submit(task); err != nil {
			t.Fatal(err)
		}
		r := waitN(t, c.m, 1)[0]
		if !r.OK || !strings.Contains(string(r.Output), "4096") {
			t.Fatalf("result = %+v output=%q", r, r.Output)
		}
	}
	run()
	c.m.EndWorkflow()
	run() // second workflow: object must come from the worker cache
	if f := srv.Fetches("/data"); f != 1 {
		t.Fatalf("URL fetched %d times; persistent cache not reused", f)
	}
}

func TestEndWorkflowEvictsEphemeral(t *testing.T) {
	c := startCluster(t, 1, nil)
	out := c.m.DeclareTemp()
	task := NewTask("echo x > f")
	task.AddOutput(out, "f")
	c.m.Submit(task)
	r := waitN(t, c.m, 1)[0]
	if !r.OK {
		t.Fatalf("task failed: %s", r.Error)
	}
	c.m.EndWorkflow()
	if _, err := c.m.FetchFile(context.Background(), out); err == nil {
		t.Fatal("temp survived end of workflow")
	}
}

func TestGunzipMiniTask(t *testing.T) {
	// gzip-compress content host-side, serve it, and let the worker's
	// built-in gunzip MiniTask decompress it on demand.
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write([]byte("compressed reference data"))
	zw.Close()
	srv := httpsource.New(&httpsource.Object{Path: "/ref.gz", Content: gz.Bytes()})
	defer srv.Close()

	c := startCluster(t, 1, nil)
	gzFile, err := c.m.DeclareURL(srv.URL("/ref.gz"), CacheWorker)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := c.m.DeclareGunzip(gzFile, CacheWorker)
	if err != nil {
		t.Fatal(err)
	}
	task := NewTask("cat ref")
	task.AddInput(plain, "ref")
	if _, err := c.m.Submit(task); err != nil {
		t.Fatal(err)
	}
	r := waitN(t, c.m, 1)[0]
	if !r.OK || !strings.Contains(string(r.Output), "compressed reference data") {
		t.Fatalf("result = %+v output=%q", r, r.Output)
	}
}

func TestPersistentCacheSharedAcrossManagers(t *testing.T) {
	// §3.2: worker-lifetime objects "may be shared across multiple
	// workflows controlled by distinct managers". Manager A populates the
	// cache; a fresh manager B, with a worker over the same directory,
	// reuses it without touching the archive again.
	blob := httpsource.SyntheticBlob("shared-dataset", 2048)
	srv := httpsource.New(&httpsource.Object{Path: "/ds", Content: blob})
	defer srv.Close()
	workDir := t.TempDir()

	runWorkflow := func(managerLabel string) {
		m, err := NewManager(ManagerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		defer m.Close()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		w, err := NewWorker(WorkerConfig{
			ManagerAddr: m.Addr(),
			WorkDir:     workDir,
			Capacity:    Resources{Cores: 2, Memory: GB, Disk: GB},
			ID:          "persistent-worker",
		})
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		go func() { defer close(done); w.Run(ctx) }()
		defer func() { cancel(); <-done }()

		ds, err := m.DeclareURL(srv.URL("/ds"), CacheWorker)
		if err != nil {
			t.Fatal(err)
		}
		task := NewTask("wc -c < ds")
		task.AddInput(ds, "ds")
		if _, err := m.Submit(task); err != nil {
			t.Fatal(err)
		}
		r, err := m.WaitTimeout(30 * time.Second)
		if err != nil {
			t.Fatalf("%s: %v", managerLabel, err)
		}
		if !r.OK || !strings.Contains(string(r.Output), "2048") {
			t.Fatalf("%s: result = %+v output=%q", managerLabel, r, r.Output)
		}
	}
	runWorkflow("manager A")
	runWorkflow("manager B")
	if f := srv.Fetches("/ds"); f != 1 {
		t.Fatalf("dataset fetched %d times across two managers; content-addressed cache not shared", f)
	}
}

func TestCustomMiniTaskWithCredential(t *testing.T) {
	// Figure 6's pattern: a user-defined MiniTask performs a custom
	// transfer/transform using a credential that must NOT be cached
	// beyond the task, while the data it produces IS cached and shared.
	c := startCluster(t, 1, nil)
	cred := c.m.DeclareBuffer([]byte("SECRET-TOKEN"), CacheTask)
	fetch := NewTask(`grep -q SECRET proxy509.pem && printf 'fetched payload' > output`)
	fetch.AddInput(cred, "proxy509.pem")
	fetched, err := c.m.DeclareMiniTask(fetch, CacheWorker)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		task := NewTask("cat data")
		task.AddInput(fetched, "data")
		if _, err := c.m.Submit(task); err != nil {
			t.Fatal(err)
		}
	}
	for _, r := range waitN(t, c.m, 3) {
		if !r.OK || !strings.Contains(string(r.Output), "fetched payload") {
			t.Fatalf("result = %+v output=%q", r, r.Output)
		}
	}
	// Identical declarations share one product name cluster-wide (§3.2).
	fetch2 := NewTask(`grep -q SECRET proxy509.pem && printf 'fetched payload' > output`)
	fetch2.AddInput(cred, "proxy509.pem")
	again, err := c.m.DeclareMiniTask(fetch2, CacheWorker)
	if err != nil {
		t.Fatal(err)
	}
	if again.ID() != fetched.ID() {
		t.Fatalf("identical MiniTasks named differently: %s vs %s", again.ID(), fetched.ID())
	}
}

package taskvine

import (
	"context"
	"os"
	"strings"
	"testing"
	"time"
)

func TestGraphLinearPipeline(t *testing.T) {
	c := startCluster(t, 2, nil)
	g := NewGraph(c.m)
	a := g.Command("printf 'stage-a' > out", WithOutput("out"))
	b := g.Command("sed 's/-a/-b/' < in > out",
		WithInput(a.Output("out"), "in"), WithOutput("out"))
	cNode := g.Command("sed 's/-b/-c/' < in > out",
		WithInput(b.Output("out"), "in"), WithOutput("out"))
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	data, err := g.Fetch(context.Background(), cNode.Output("out"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(data)) != "stage-c" {
		t.Fatalf("final = %q", data)
	}
	for _, n := range []*Node{a, b, cNode} {
		if n.Result() == nil || !n.Result().OK {
			t.Fatalf("node %d result = %+v", n.id, n.Result())
		}
	}
}

func TestGraphDiamond(t *testing.T) {
	c := startCluster(t, 2, nil)
	g := NewGraph(c.m)
	src := g.Command("printf '5' > n", WithOutput("n"))
	left := g.Command("echo $(($(cat n) * 2)) > out",
		WithInput(src.Output("n"), "n"), WithOutput("out"))
	right := g.Command("echo $(($(cat n) + 3)) > out",
		WithInput(src.Output("n"), "n"), WithOutput("out"))
	merge := g.Command("echo $(($(cat l) + $(cat r))) > sum",
		WithInput(left.Output("out"), "l"),
		WithInput(right.Output("out"), "r"),
		WithOutput("sum"))
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	data, err := g.Fetch(context.Background(), merge.Output("sum"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(data)) != "18" { // 5*2 + 5+3
		t.Fatalf("sum = %q", data)
	}
}

func TestGraphFanOutFanIn(t *testing.T) {
	c := startCluster(t, 3, nil)
	g := NewGraph(c.m)
	const width = 12
	parts := make([]*Node, width)
	merge := g.Command("cat p* | sort -n > all", WithOutput("all"))
	for i := range parts {
		parts[i] = g.Command("echo $VAL > out", WithOutput("out"), WithEnv("VAL", itoa(i)))
		WithInput(parts[i].Output("out"), "p"+pad(i))(merge)
	}
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	data, _ := g.Fetch(context.Background(), merge.Output("all"))
	lines := strings.Fields(string(data))
	if len(lines) != width || lines[0] != "0" || lines[width-1] != itoa(width-1) {
		t.Fatalf("merged = %q", data)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func pad(n int) string {
	s := itoa(n)
	for len(s) < 2 {
		s = "0" + s
	}
	return s
}

func TestGraphExplicitOrdering(t *testing.T) {
	c := startCluster(t, 1, nil)
	g := NewGraph(c.m)
	// No data edge, but b must run after a (verified via a host-side file).
	marker := t.TempDir() + "/marker"
	a := g.Command("sleep 0.2; touch " + marker)
	b := g.Command("test -f "+marker+" && echo ordered", After(a))
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b.Result().Output), "ordered") {
		t.Fatalf("ordering violated: %+v", b.Result())
	}
}

func TestGraphDependencyFailureSkipsDescendants(t *testing.T) {
	c := startCluster(t, 1, nil)
	g := NewGraph(c.m)
	bad := g.Command("exit 3", WithOutput("never"))
	// The command does not create "never", but it exits non-zero first.
	child := g.Command("cat in", WithInput(bad.Output("never"), "in"))
	grandchild := g.Command("echo should-not-run", After(child))
	err := g.Run(context.Background())
	if err == nil {
		t.Fatal("graph with failing node reported success")
	}
	if child.Result().OK || grandchild.Result().OK {
		t.Fatal("descendants of failed node ran")
	}
	if bad.Result().ExitCode != 3 {
		t.Fatalf("bad result = %+v", bad.Result())
	}
}

func TestGraphCycleRejected(t *testing.T) {
	c := startCluster(t, 1, nil)
	g := NewGraph(c.m)
	a := g.Command("true")
	b := g.Command("true", After(a))
	// Manually close the cycle (the public API cannot, since After takes
	// already-created nodes; this simulates a future construction bug).
	a.deps[b.id] = true
	if err := g.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle not rejected: %v", err)
	}
}

func TestGraphRunTwiceRejected(t *testing.T) {
	c := startCluster(t, 1, nil)
	g := NewGraph(c.m)
	g.Command("true")
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := g.Run(context.Background()); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestGraphUnknownOutputPanics(t *testing.T) {
	c := startCluster(t, 1, nil)
	g := NewGraph(c.m)
	n := g.Command("true")
	defer func() {
		if recover() == nil {
			t.Fatal("unknown output did not panic")
		}
	}()
	n.Output("nope")
}

func TestGraphLocalOutput(t *testing.T) {
	c := startCluster(t, 1, nil)
	dest := t.TempDir() + "/final.txt"
	if err := writeFile(dest, nil); err != nil {
		t.Fatal(err)
	}
	g := NewGraph(c.m)
	g.Command("printf 'to shared fs' > out", WithLocalOutput("out", dest))
	if err := g.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	waitForContent(t, dest, "to shared fs")
}

func writeFile(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644)
}

func waitForContent(t *testing.T, path, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		b, _ := os.ReadFile(path)
		if string(b) == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("content of %s = %q, want %q", path, b, want)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// Command vinelint runs TaskVine's domain-specific static analyzers:
//
//	simdeterminism  no wall-clock time or global randomness in simulator code
//	lockguard       struct fields marked "guarded by <mu>" are accessed under it
//	protocomplete   every protocol message type is produced and dispatched
//	closecheck      no dropped errors from Close/Flush/transfer finalization
//
// Usage: go run ./tools/vinelint ./...
//
// The only accepted package pattern is "./..." rooted at the module
// directory; the tool always analyzes the whole module because
// protocomplete is inherently cross-package.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"taskvine/tools/vinelint/internal/analyzers"
	"taskvine/tools/vinelint/internal/lint"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vinelint:", err)
		os.Exit(2)
	}
}

func run() error {
	root, err := findModuleRoot()
	if err != nil {
		return err
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		return err
	}
	// The linter does not lint itself or fixture trees.
	pkgs, err := loader.LoadAll(func(rel string) bool {
		return rel == "tools" || strings.HasPrefix(rel, "tools/")
	})
	if err != nil {
		return err
	}
	diags, err := lint.Run(pkgs, analyzers.All())
	if err != nil {
		return err
	}
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		rel, rerr := filepath.Rel(root, pos.Filename)
		if rerr != nil {
			rel = pos.Filename
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", rel, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	return nil
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// Command vinelint runs TaskVine's domain-specific static analyzers:
//
//	simdeterminism  no wall-clock time or global randomness in simulator code
//	lockguard       struct fields marked "guarded by <mu>" are accessed under it
//	protocomplete   every protocol message type is produced and dispatched
//	closecheck      no dropped errors from Close/Flush/transfer finalization
//	hotpath         no sorts or map-wide scans reachable from schedule()
//	eventblock      no blocking work reachable from the manager/worker loops
//	goroleak        every go statement has a provable shutdown lifecycle
//	lockorder       no cycles in the lock-acquisition order graph
//	metricparity    vine_* instrument naming, registration, and parity rules
//
// Usage:
//
//	go run ./tools/vinelint [flags] ./...
//	go run ./tools/vinelint [flags] ./internal/core/... ./internal/worker
//
// The whole module is always loaded and type-checked — whole-module
// analyzers (protocomplete, lockorder, metricparity) are inherently
// cross-package — but explicit package patterns restrict which packages
// the per-package analyzers report on, so pre-commit runs can target a
// subtree.
//
// Flags:
//
//	-format text|github   diagnostic print format (github emits workflow
//	                      ::error/::warning annotation commands)
//	-json-file PATH       additionally write diagnostics as a JSON array
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"taskvine/tools/vinelint/internal/analyzers"
	"taskvine/tools/vinelint/internal/lint"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vinelint:", err)
		os.Exit(2)
	}
}

// jsonDiagnostic is the machine-readable form of one finding, consumed by
// CI to attach inline annotations.
type jsonDiagnostic struct {
	Analyzer string `json:"analyzer"`
	Severity string `json:"severity"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func run() error {
	format := flag.String("format", "text", "diagnostic output format: text or github")
	jsonFile := flag.String("json-file", "", "also write diagnostics as a JSON array to this file")
	flag.Parse()
	if *format != "text" && *format != "github" {
		return fmt.Errorf("unknown -format %q (want text or github)", *format)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		return fmt.Errorf("no package patterns (try ./...)")
	}

	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		return err
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		return err
	}
	// The linter does not lint itself or fixture trees.
	pkgs, err := loader.LoadAll(func(rel string) bool {
		return rel == "tools" || strings.HasPrefix(rel, "tools/")
	})
	if err != nil {
		return err
	}

	selected, err := selectPackages(pkgs, loader.ModulePath, root, cwd, patterns)
	if err != nil {
		return err
	}
	diags, err := lint.RunSelected(pkgs, analyzers.All(), selected)
	if err != nil {
		return err
	}

	var records []jsonDiagnostic
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		rel, rerr := filepath.Rel(root, pos.Filename)
		if rerr != nil {
			rel = pos.Filename
		}
		rel = filepath.ToSlash(rel)
		records = append(records, jsonDiagnostic{
			Analyzer: d.Analyzer,
			Severity: d.Severity.String(),
			File:     rel,
			Line:     pos.Line,
			Column:   pos.Column,
			Message:  d.Message,
		})
	}
	for _, r := range records {
		switch *format {
		case "github":
			// GitHub Actions workflow command: surfaces as an inline
			// annotation on the PR diff.
			level := "error"
			if r.Severity == "warning" {
				level = "warning"
			}
			fmt.Printf("::%s file=%s,line=%d,col=%d::[%s] %s\n",
				level, r.File, r.Line, r.Column, r.Analyzer, r.Message)
		default:
			fmt.Printf("%s:%d:%d: %s: [%s] %s\n",
				r.File, r.Line, r.Column, r.Severity, r.Analyzer, r.Message)
		}
	}
	if *jsonFile != "" {
		if records == nil {
			records = []jsonDiagnostic{}
		}
		data, err := json.MarshalIndent(records, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonFile, append(data, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", *jsonFile, err)
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
	return nil
}

// selectPackages resolves the command-line patterns to the set of import
// paths the per-package analyzers report on. nil means "everything"
// (pattern ./... at the module root). Supported forms, resolved relative
// to the working directory: ./... (module-wide), ./dir/... (subtree),
// ./dir (single package).
func selectPackages(pkgs []*lint.Package, modPath, root, cwd string, patterns []string) (map[string]bool, error) {
	selected := make(map[string]bool)
	for _, pat := range patterns {
		recursive := false
		dir := pat
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			dir = rest
			if dir == "." || dir == "" {
				dir = "."
			}
		}
		abs := filepath.Join(cwd, filepath.FromSlash(dir))
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("pattern %q resolves outside the module rooted at %s", pat, root)
		}
		rel = filepath.ToSlash(rel)
		if recursive && rel == "." {
			return nil, nil // whole module
		}
		base := modPath
		if rel != "." {
			base = modPath + "/" + rel
		}
		matched := false
		for _, p := range pkgs {
			if p.Path == base || (recursive && strings.HasPrefix(p.Path, base+"/")) {
				selected[p.Path] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matched no loaded packages", pat)
		}
	}
	return selected, nil
}

module goroleak

go 1.24

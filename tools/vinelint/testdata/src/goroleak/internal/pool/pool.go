// Package pool is a fixture for the goroleak analyzer: every go statement
// must prove a lifecycle — a WaitGroup Done, a shutdown-channel receive or
// close, or context cancellation.
package pool

import (
	"context"
	"os"
	"sync"
)

// Pool tracks the helpers it launches.
type Pool struct {
	wg   sync.WaitGroup
	done chan struct{}
	jobs chan int
}

// StartTracked launches a literal that a WaitGroup waits for.
func (p *Pool) StartTracked() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		work()
	}()
}

// StartSignaled launches a literal whose exit closes the done channel —
// the goroutine IS the completion signal someone else waits on.
func (p *Pool) StartSignaled() {
	go func() {
		defer close(p.done)
		work()
	}()
}

// StartCancellable launches a literal parked on context cancellation.
func (p *Pool) StartCancellable(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// Drain ranges over a shutdown-named channel, which bounds its life.
func (p *Pool) Drain(stopped chan int) {
	go func() {
		for range stopped {
		}
	}()
}

// StartLeaky launches a literal nothing waits for.
func (p *Pool) StartLeaky() {
	go func() { // want:goroleak "goroutine has no provable lifecycle"
		work()
	}()
}

// runForever drains a channel with no shutdown name: nothing proves it
// ever exits.
func runForever(jobs chan int) {
	for j := range jobs {
		_ = j
	}
}

// StartNamedLeaky launches a declared function whose body proves nothing.
func (p *Pool) StartNamedLeaky() {
	go runForever(p.jobs) // want:goroleak "goroutine has no provable lifecycle"
}

// watch receives from the pool's done channel, so launching it is fine.
func (p *Pool) watch() {
	<-p.done
}

// StartNamedTracked launches a declared function with a visible lifecycle.
func (p *Pool) StartNamedTracked() {
	go p.watch()
}

// CleanupAsync fires a function from outside the module; its body is
// invisible, so no lifecycle can be proven.
func CleanupAsync(tmp string) {
	go os.Remove(tmp) // want:goroleak "goroutine launches a function whose body is not visible to the linter"
}

func work() {}

// Command demo is package main: process-lifetime goroutines die with the
// binary, so goroleak exempts the whole package.
package main

func main() {
	go spin()
	select {}
}

func spin() {}

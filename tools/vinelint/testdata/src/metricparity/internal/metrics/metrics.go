// Package metrics is a fixture registry for the metricparity analyzer:
// ForRegistry is the single registration point, and every instrument
// field of VineMetrics must be assigned there.
package metrics

// Instrument kinds mirror the real registry's constructors.
type (
	// Counter counts monotonically.
	Counter struct{}
	// CounterVec is a labelled counter family.
	CounterVec struct{}
	// Gauge tracks a level.
	Gauge struct{}
	// GaugeVec is a labelled gauge family.
	GaugeVec struct{}
	// Histogram samples a distribution.
	Histogram struct{}
)

// Registry constructs named instruments.
type Registry struct{}

// Counter registers a counter.
func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }

// CounterVec registers a labelled counter.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{}
}

// Gauge registers a gauge.
func (r *Registry) Gauge(name, help string) *Gauge { return &Gauge{} }

// GaugeVec registers a labelled gauge.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec { return &GaugeVec{} }

// Histogram registers a histogram.
func (r *Registry) Histogram(name, help string) *Histogram { return &Histogram{} }

// VineMetrics is the instrument bundle the rest of the module uses.
type VineMetrics struct {
	TasksDone   *Counter
	Failures    *CounterVec
	QueueDepth  *Gauge
	QueueDepth2 *Gauge
	DiskTotal   *Gauge
	BytesSent   *Counter
	WaitTime    *Histogram
	Inserts     *Counter
	InsertBytes *Counter
	SpillBytes  *Counter
	Orphan      *Gauge // want:metricparity "VineMetrics.Orphan is not assigned in ForRegistry"

	reg *Registry // not an instrument: exempt from the parity check
}

// ForRegistry builds the bundle; it is the single registration point the
// analyzer pins.
func ForRegistry(r *Registry) *VineMetrics {
	return &VineMetrics{
		TasksDone:   r.Counter("vine_tasks_done_total", "tasks completed"),
		Failures:    r.CounterVec("vine_failures", "failures by kind", "kind"), // want:metricparity "counter \"vine_failures\" must end in _total"
		QueueDepth:  r.Gauge("vine_queue_depth", "waiting tasks"),
		QueueDepth2: r.Gauge("vine_queue_depth", "duplicate family name"), // want:metricparity "registered twice"
		DiskTotal:   r.Gauge("vine_disk_total", "bytes on disk"),          // want:metricparity "ends in _total but is not a counter"
		BytesSent:   r.Counter("vine_bytes_sent_total", "payload bytes"),  // want:metricparity "buries the _bytes unit mid-name"
		WaitTime:    r.Histogram("vine_wait_seconds", "queue wait"),
		// A byte-volume counter is fine when its event-count companion
		// is registered alongside it...
		Inserts:     r.Counter("vine_inserts_total", "insert events"),
		InsertBytes: r.Counter("vine_insert_bytes_total", "insert volume"),
		// ...and a diagnostic when it stands alone.
		SpillBytes: r.Counter("vine_spill_bytes_total", "spill volume"), // want:metricparity "byte counter \"vine_spill_bytes_total\" has no event-count companion"

		reg: r,
	}
}

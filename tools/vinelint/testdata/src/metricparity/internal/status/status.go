// Package status exercises metricparity's out-of-package rules: stray
// vine_* literals must name registered families, and instruments must not
// be registered outside internal/metrics.
package status

import "metricparity/internal/metrics"

// kindFamilies maps trace kinds to the families that count them; every
// name must be one ForRegistry actually registers.
var kindFamilies = map[string]string{
	"task-done": "vine_tasks_done_total",
	"evicted":   "vine_evictions_total", // want:metricparity "\"vine_evictions_total\" does not match any family registered by ForRegistry"
}

// Register adds an instrument outside internal/metrics, which breaks the
// single-constructor parity between simulated and real runs.
func Register(r *metrics.Registry) {
	r.Counter("vine_rogue_total", "registered in the wrong package") // want:metricparity "instrument \"vine_rogue_total\" is registered outside internal/metrics"
}

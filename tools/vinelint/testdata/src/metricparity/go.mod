module metricparity

go 1.24

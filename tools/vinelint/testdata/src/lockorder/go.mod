module lockorder

go 1.24

// Package locks is a fixture for the lockorder analyzer: inconsistent
// acquisition orders between lock classes form cycles, reported once per
// cycle at the first witness of the edge leaving the cycle's
// lexicographically smallest class.
package locks

import "sync"

// A and B are two lock classes acquired in both orders below.
type A struct{ mu sync.Mutex }

// B pairs with A in the direct cycle.
type B struct{ mu sync.Mutex }

var (
	a A
	b B
)

// LockAB takes A then B: together with LockBA this closes a cycle, and
// the A->B edge recorded here is the reported witness.
func LockAB() {
	a.mu.Lock()
	b.mu.Lock() // want:lockorder "lock ordering cycle"
	b.mu.Unlock()
	a.mu.Unlock()
}

// LockBA takes B then A, the reverse order.
func LockBA() {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

// NestedConsistently repeats the A-then-B order under a deferred unlock:
// a second witness of an existing edge adds nothing.
func NestedConsistently() {
	a.mu.Lock()
	defer a.mu.Unlock()
	b.mu.Lock()
	b.mu.Unlock()
}

// Reacquire locks the same class twice in one body, a guaranteed
// self-deadlock on a non-reentrant mutex.
func Reacquire() {
	a.mu.Lock()
	a.mu.Lock() // want:lockorder "is re-acquired in Reacquire while already held"
	a.mu.Unlock()
	a.mu.Unlock()
}

// C and D close a cycle only through a call chain: each function alone
// holds one lock while a callee acquires the other.
type C struct{ mu sync.Mutex }

// D pairs with C in the cross-function cycle.
type D struct{ mu sync.Mutex }

var (
	c C
	d D
)

// HoldCThenCallD holds C.mu across a call that acquires D.mu.
func HoldCThenCallD() {
	c.mu.Lock()
	takeD() // want:lockorder "lock ordering cycle"
	c.mu.Unlock()
}

func takeD() {
	d.mu.Lock()
	d.mu.Unlock()
}

// HoldDThenCallC holds D.mu across a call that acquires C.mu.
func HoldDThenCallC() {
	d.mu.Lock()
	takeC()
	d.mu.Unlock()
}

func takeC() {
	c.mu.Lock()
	c.mu.Unlock()
}

// E and F would form a cycle if goroutine launches imposed ordering —
// they do not, because a fresh goroutine starts with nothing held.
type E struct{ mu sync.Mutex }

// F pairs with E in the goroutine non-cycle.
type F struct{ mu sync.Mutex }

var (
	e E
	f F
)

// TakeEF orders E before F directly.
func TakeEF() {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

// HoldFThenSpawnE holds F.mu while launching a goroutine that acquires
// E.mu: a synchronous call here would record the F->E edge and close a
// cycle with TakeEF, but the goroutine starts with nothing held, so E/F
// stays acyclic.
func HoldFThenSpawnE() {
	f.mu.Lock()
	go takeE()
	f.mu.Unlock()
}

func takeE() {
	e.mu.Lock()
	e.mu.Unlock()
}

// Table embeds its mutex, so the named type itself is the lock class;
// regMu is a package-level lock class.
type Table struct {
	sync.Mutex
	rows int
}

var (
	tbl   Table
	regMu sync.Mutex
)

// LockTableThenReg and LockRegThenTable disagree on order, closing a
// cycle between an embedded-mutex class and a package-level var class.
func LockTableThenReg() {
	tbl.Lock()
	regMu.Lock() // want:lockorder "lock ordering cycle"
	regMu.Unlock()
	tbl.Unlock()
}

// LockRegThenTable takes the locks in the reverse order.
func LockRegThenTable() {
	regMu.Lock()
	tbl.Lock()
	tbl.rows++
	tbl.Unlock()
	regMu.Unlock()
}

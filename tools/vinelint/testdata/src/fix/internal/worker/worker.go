// Package worker is the fixture receiver side for manager→worker messages.
package worker

import "fix/internal/protocol"

// Handle dispatches inbound messages from the manager.
func Handle(m *protocol.Message) {
	switch m.Type {
	case protocol.TypePing:
		reply()
	case protocol.TypeGhost:
		// Receiver wired, but no producer exists anywhere: protocomplete
		// reports the constant, not this arm.
	}
}

func reply() {}

// Send produces the worker→manager answer.
func Send() *protocol.Message {
	return &protocol.Message{Type: protocol.TypePong}
}

// Report produces TypeDeaf, which the manager side never dispatches.
func Report() *protocol.Message {
	m := &protocol.Message{}
	m.Type = protocol.TypeDeaf
	return m
}

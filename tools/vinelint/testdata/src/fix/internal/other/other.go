// Package other is a fixture outside every analyzer's scope: wall-clock
// reads and bare Close calls here are legitimate and must not be flagged.
package other

import (
	"os"
	"time"
)

// Stamp reads the wall clock, fine outside simulator scope.
func Stamp() time.Time { return time.Now() }

// Touch drops a Close error, fine outside the cache/transfer scopes.
func Touch(path string) {
	f, err := os.Create(path)
	if err != nil {
		return
	}
	f.Close()
}

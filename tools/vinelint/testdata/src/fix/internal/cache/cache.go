// Package cache is a fixture for the closecheck analyzer.
package cache

import "os"

// Write drops the Close error, losing the only signal that the object
// actually reached disk.
func Write(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		return err
	}
	f.Close() // want:closecheck "error from Close is dropped"
	return nil
}

// WriteChecked propagates the Close error, the fixed form of Write.
func WriteChecked(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, werr := f.Write(b)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// Scratch removes a directory whose deletion failure is unactionable; the
// explicit discard is the sanctioned exemption.
func Scratch(dir string) {
	_ = os.RemoveAll(dir)
}

// Read closes via defer, which is structurally exempt.
func Read(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	n, _ := f.Read(buf)
	return buf[:n], nil
}

// Spill drops a Sync error under an explicit suppression comment, which
// exercises the //vinelint:allow machinery.
func Spill(f *os.File) {
	f.Sync() //vinelint:allow closecheck fixture exercises suppression
}

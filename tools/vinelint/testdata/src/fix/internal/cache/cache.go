// Package cache is a fixture for the closecheck analyzer.
package cache

import "os"

// Write drops the Close error, losing the only signal that the object
// actually reached disk.
func Write(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		return err
	}
	f.Close() // want:closecheck "error from Close is dropped"
	return nil
}

// WriteChecked propagates the Close error, the fixed form of Write.
func WriteChecked(path string, b []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, werr := f.Write(b)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	return werr
}

// Scratch removes a directory whose deletion failure is unactionable; the
// explicit discard is the sanctioned exemption.
func Scratch(dir string) {
	_ = os.RemoveAll(dir)
}

// Read closes via defer, which is structurally exempt.
func Read(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	buf := make([]byte, 16)
	n, _ := f.Read(buf)
	return buf[:n], nil
}

// Spill drops a Sync error under a well-formed suppression comment —
// analyzer named, reason written — which silences exactly that analyzer
// on that line.
func Spill(f *os.File) {
	f.Sync() //vinelint:ignore closecheck fixture exercises suppression
}

// SpillLegacy still uses the retired allow grammar: the framework reports
// the stale comment, and the underlying finding is no longer silenced.
func SpillLegacy(f *os.File) {
	f.Sync() //vinelint:allow closecheck stale grammar // want:vinelint "vinelint:allow is retired" // want:closecheck "error from Sync is dropped"
}

// SpillNoReason suppresses without a written justification, which the
// framework rejects while leaving the finding live.
func SpillNoReason(f *os.File) {
	// want:vinelint "has no reason" //vinelint:ignore closecheck
	f.Sync() // want:closecheck "error from Sync is dropped"
}

// SpillNoAnalyzer names no analyzer at all, so the framework cannot tell
// what the author meant to silence.
func SpillNoAnalyzer(f *os.File) {
	// want:vinelint "names no analyzer" //vinelint:ignore
	f.Sync() // want:closecheck "error from Sync is dropped"
}

// Package core is the fixture receiver side for worker→manager messages.
package core

import "fix/internal/protocol"

// Handle dispatches inbound messages from workers via comparison rather
// than a switch, which protocomplete also counts as a dispatch arm.
func Handle(m *protocol.Message) bool {
	return m.Type == protocol.TypePong
}

// Ping produces the manager→worker liveness probe.
func Ping() *protocol.Message {
	return &protocol.Message{Type: protocol.TypePing}
}

// Package lockstate is a fixture for the lockguard analyzer.
package lockstate

import "sync"

// Counter carries a field annotated with the guarded-by convention.
type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// Good acquires the mutex before touching n.
func (c *Counter) Good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Bad forgets the lock entirely.
func (c *Counter) Bad() int {
	return c.n // want:lockguard "Counter.Bad accesses c.n (guarded by mu)"
}

// bumpLocked runs with the lock held; the name suffix exempts it.
func (c *Counter) bumpLocked() { c.n++ }

// Peek reads n without locking; the caller holds c.mu.
func (c *Counter) Peek() int { return c.n }

// Typod names a guard mutex that is not a field of the struct, so the
// annotation silently checks nothing.
type Typod struct { // want:lockguard "has no field named \"lock\""
	mu sync.Mutex
	v  int // guarded by lock
}

// Get acquires the real mutex, but the broken annotation names "lock",
// so no acquisition can ever satisfy it.
func (t *Typod) Get() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.v // want:lockguard "without acquiring t.lock"
}

package sim

import (
	"math/rand"
	"sort"
	"time"
)

// SortedKeys launders map-iteration order through a sort, which is the
// sanctioned pattern.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// SeededRoll uses an owned, seeded generator, which is allowed.
func SeededRoll(rng *rand.Rand) int { return rng.Intn(6) }

// Scale uses time only for unit conversion, not to read a clock.
func Scale(ms int64) time.Duration { return time.Duration(ms) * time.Millisecond }

// Drain iterates a map with a builtin-only body, which cannot leak order.
func Drain(m map[string]int) {
	for k := range m {
		delete(m, k)
	}
}

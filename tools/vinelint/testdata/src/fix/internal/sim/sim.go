// Package sim is a fixture: simulator-scoped code violating the
// determinism invariants that simdeterminism enforces.
package sim

import (
	"math/rand"
	"time"
)

// Clock reads the wall clock, which is forbidden in simulator scope.
func Clock() time.Time {
	return time.Now() // want:simdeterminism "time.Now in simulator code"
}

// Pause sleeps real time instead of advancing the simulated clock.
func Pause() {
	time.Sleep(time.Millisecond) // want:simdeterminism "time.Sleep in simulator code"
}

// Roll uses the process-seeded global generator.
func Roll() int {
	return rand.Intn(6) // want:simdeterminism "global rand.Intn in simulator code"
}

// Keys leaks map iteration order into its result slice.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m { // want:simdeterminism "appends to out without a later sort"
		out = append(out, k)
	}
	return out
}

var sink []string

// Effects calls a side-effecting function per iteration, so the order of
// the side effects is random.
func Effects(m map[string]bool) {
	for k := range m { // want:simdeterminism "side-effecting calls"
		record(k)
	}
}

func record(k string) { sink = append(sink, k) }

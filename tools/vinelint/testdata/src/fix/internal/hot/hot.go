// Package hot exercises the hotpath analyzer: sort.Slice and whole-map
// iteration inside functions reachable from schedule() must carry a
// hotpath-ok annotation.
package hot

import "sort"

type queue struct {
	tasks   map[int]string
	waiting []int
	workers []int
	dirty   bool
}

// schedule is the analyzer's root: everything it can reach, including
// through deferred closures and callbacks, is on the hot path.
func (q *queue) schedule() {
	for id := range q.tasks { // want:hotpath "map iteration in schedule"
		_ = id
	}
	q.plan()
}

func (q *queue) plan() {
	sort.Slice(q.waiting, func(i, j int) bool { return q.waiting[i] < q.waiting[j] }) // want:hotpath "sort.Slice in plan"
	defer func() { q.rebuild() }()
}

// rebuild runs only when membership changes, so its scan and sort are
// annotated as bounded.
func (q *queue) rebuild() {
	if !q.dirty {
		return
	}
	for id := range q.tasks { // hotpath-ok: runs only on membership change
		_ = id
	}
	// hotpath-ok: sorted once per membership change, not per pass
	sort.Slice(q.workers, func(i, j int) bool { return q.workers[i] < q.workers[j] })
	q.dirty = false
}

// report is not reachable from schedule, so its full scans are fine.
func (q *queue) report() int {
	n := 0
	for range q.tasks {
		n++
	}
	sort.Slice(q.waiting, func(i, j int) bool { return q.waiting[i] < q.waiting[j] })
	return n
}

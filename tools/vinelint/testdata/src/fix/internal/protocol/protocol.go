// Package protocol is a fixture wire protocol for the protocomplete
// analyzer.
package protocol

// Message is the single wire message shape.
type Message struct {
	Type string
}

// Message type tags, with wire direction noted in the doc comment exactly
// as the real protocol package does.
const (
	// TypePing (manager→worker) checks worker liveness.
	TypePing = "ping"
	// TypePong (worker→manager) answers TypePing.
	TypePong = "pong"
	// TypeGhost (manager→worker) has a receiver arm wired but no sender
	// anywhere in the module.
	TypeGhost = "ghost" // want:protocomplete "TypeGhost is never produced"
	// TypeDeaf (worker→manager) is produced by workers but the manager
	// side never dispatches it.
	TypeDeaf = "deaf" // want:protocomplete "no dispatch arm in internal/core"
)

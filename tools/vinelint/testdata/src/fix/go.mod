module fix

go 1.24

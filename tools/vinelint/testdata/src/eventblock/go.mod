module eventblock

go 1.24

// Package worker is the fixture worker side: readLoop is the loop root,
// and its own Recv is the pump itself, not a finding.
package worker

import "eventblock/internal/protocol"

// Worker mirrors the real worker's connection read loop.
type Worker struct {
	conn *protocol.Conn
}

// readLoop pumps messages; the root's own Recv is exempt.
func (w *Worker) readLoop() {
	for {
		m, err := w.conn.Recv()
		if err != nil {
			return
		}
		w.forward(m)
	}
}

// forward re-reads from the connection and streams a payload, both of
// which stall the pump while it should be draining control messages.
func (w *Worker) forward(m *protocol.Message) {
	_, _ = w.conn.Recv()           // want:eventblock "protocol Recv in forward is synchronously reachable from the readLoop loop"
	_ = w.conn.SendPayload(m, nil) // want:eventblock "protocol SendPayload (bulk transfer) in forward is synchronously reachable from the readLoop loop"
}

// Package protocol is a stub wire layer: the eventblock analyzer
// special-cases Conn's bulk methods and Dial by package path.
package protocol

import "io"

// Message is one control frame.
type Message struct {
	Type string
}

// Conn is one wire connection.
type Conn struct{}

// Recv blocks until a frame arrives.
func (c *Conn) Recv() (*Message, error) { return nil, nil }

// Send writes one bounded control frame.
func (c *Conn) Send(m *Message) error { return nil }

// SendPayload streams a bulk payload after the header frame.
func (c *Conn) SendPayload(m *Message, r io.Reader) error { return nil }

// Dial opens a connection.
func Dial(addr string) (*Conn, error) { return &Conn{}, nil }

// Package shard is the fixture router side for the eventblock analyzer:
// pump and balanceLoop are loop roots. The pump drains shard results and
// releases tenant quota, so any synchronous blocking there stalls every
// tenant on the shard; the balancer probes load on a ticker and must stay
// a bounded in-process round-trip.
package shard

import (
	"os"
	"time"
)

// Router mirrors the real router's result plumbing shape.
type Router struct {
	results chan int
	resSig  chan struct{}
	resQ    []int
	done    chan struct{}
}

// pump is a loop root; it must never block.
func (r *Router) pump(i int) {
	r.remap(i) // pure bookkeeping: fine
	r.journal(i)
	r.queueResult(i)
	r.results <- i // want:eventblock "channel send in pump may block the pump loop"
	go r.deliverLoop()
}

// remap is pure in-memory bookkeeping, reachable and clean.
func (r *Router) remap(i int) {
	r.resQ = append(r.resQ, i)
}

// journal is one hop below the root; its file I/O is still on the hot
// path.
func (r *Router) journal(i int) {
	_ = os.WriteFile("journal", nil, 0o644) // want:eventblock "os.WriteFile in journal is synchronously reachable from the pump loop"
}

// queueResult is the sanctioned shape: append under the caller's lock and
// wake the deliverer with a non-blocking send.
func (r *Router) queueResult(i int) {
	r.resQ = append(r.resQ, i)
	select {
	case r.resSig <- struct{}{}:
	default:
	}
}

// deliverLoop is reached only through a go statement; its blocking send
// is the other goroutine's business.
func (r *Router) deliverLoop() {
	for _, v := range r.resQ {
		r.results <- v
	}
}

// balanceLoop is the second loop root: a ticker-driven probe cycle.
func (r *Router) balanceLoop() {
	t := time.NewTicker(time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-t.C:
			r.balanceOnce()
		}
	}
}

// balanceOnce is reachable from balanceLoop; pacing the probe with a
// sleep would hold up shutdown and the next probe alike.
func (r *Router) balanceOnce() {
	time.Sleep(time.Millisecond) // want:eventblock "time.Sleep in balanceOnce is synchronously reachable from the balanceLoop loop"
}

// Package core is the fixture manager side for the eventblock analyzer:
// handleEvent is a loop root, and every function synchronously reachable
// from it is on the hot path unless reached through a go statement.
package core

import (
	"os"
	"time"

	"eventblock/internal/protocol"
)

// Manager mirrors the real manager's single-threaded event loop shape.
type Manager struct {
	events chan int
	out    chan int
	conn   *protocol.Conn
}

// handleEvent is the loop body; it must never block.
func (m *Manager) handleEvent(ev int) {
	time.Sleep(time.Millisecond) // want:eventblock "time.Sleep in handleEvent is synchronously reachable from the handleEvent loop"
	m.out <- ev                  // want:eventblock "channel send in handleEvent may block the handleEvent loop"
	select {
	case m.out <- ev: // non-blocking by construction: the select has a default
	default:
	}
	m.persist()
	m.stream()
	m.cleanup()
	m.reply(make(chan int, 1))
	m.deliverSpool(&spool{path: "vine-spool-1"})
	go m.slowWork() // handed to another goroutine: the sanctioned fix
}

// persist is reachable synchronously, so its file I/O is flagged even
// though the call is one hop below the root.
func (m *Manager) persist() {
	_, _ = os.Create("state") // want:eventblock "os.Create in persist is synchronously reachable from the handleEvent loop"
}

// stream ships a bulk payload and dials a peer, neither of which is ever
// loop-safe; the bounded control-frame Send is permitted.
func (m *Manager) stream() {
	_ = m.conn.SendPayload(&protocol.Message{}, nil) // want:eventblock "protocol SendPayload (bulk transfer) in stream is synchronously reachable from the handleEvent loop"
	_, _ = protocol.Dial("peer:9000")                // want:eventblock "protocol Dial in stream is synchronously reachable from the handleEvent loop"
	_ = m.conn.Send(&protocol.Message{})             // bounded control frame: allowed
}

// cleanup's removal is bounded and carries the annotation escape hatch.
func (m *Manager) cleanup() {
	_ = os.Remove("tombstone") // eventloop-ok: single bounded unlink per completed task
}

// reply sends on a caller-supplied channel: the caller sized it, so the
// send is the caller's latency contract.
func (m *Manager) reply(ch chan int) {
	ch <- 1
}

// slowWork is reached only through a go statement, so blocking here is
// invisible to the loop.
func (m *Manager) slowWork() {
	_, _ = os.ReadFile("big")
}

// spool models a disk-spooled large payload: the reader goroutine streams
// the body to a temp file before the event reaches the loop, so the loop
// only ever touches metadata — and must hand the unlink back to a
// background goroutine.
type spool struct{ path string }

// release unlinks the spool file; reached only through go statements.
func (s *spool) release() {
	_ = os.Remove(s.path)
}

// deliverSpool is the loop-side half of the spooling path: comparing
// checksum strings is fine, removing the spool file synchronously is not.
func (m *Manager) deliverSpool(s *spool) {
	if s.path == "" {
		return
	}
	_ = os.Remove(s.path) // want:eventblock "os.Remove in deliverSpool is synchronously reachable from the handleEvent loop"
	go s.release()        // the sanctioned shape: refcount, then unlink off-loop
}

package main

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"taskvine/tools/vinelint/internal/analyzers"
	"taskvine/tools/vinelint/internal/lint"
)

// wantRe matches expectation comments in fixture files:
//
//	f.Close() // want:closecheck "error from Close is dropped"
//
// The analyzer named after the colon must report a diagnostic on that line
// whose message contains the quoted substring.
var wantRe = regexp.MustCompile(`//\s*want:(\w+)\s+"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file     string // relative to the fixture module root
	line     int
	analyzer string
	substr   string
	matched  bool
}

// collectWants scans every fixture .go file for want comments.
func collectWants(t *testing.T, root string) []*expectation {
	t.Helper()
	var wants []*expectation
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, _ := filepath.Rel(root, p)
		sc := bufio.NewScanner(f)
		for lineNo := 1; sc.Scan(); lineNo++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				wants = append(wants, &expectation{
					file:     filepath.ToSlash(rel),
					line:     lineNo,
					analyzer: m[1],
					substr:   strings.ReplaceAll(m[2], `\"`, `"`),
				})
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatalf("scanning fixtures: %v", err)
	}
	return wants
}

// TestAnalyzersAgainstFixtures runs the full analyzer suite over the
// fixture module and requires an exact match between diagnostics and the
// // want: expectations — every expectation fires, and nothing else does.
func TestAnalyzersAgainstFixtures(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src", "fix"))
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, root)
	if len(wants) == 0 {
		t.Fatal("no // want: expectations found in fixtures")
	}

	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatalf("creating loader: %v", err)
	}
	pkgs, err := loader.LoadAll(nil)
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	diags, err := lint.Run(pkgs, analyzers.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}

	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		rel, err := filepath.Rel(root, pos.Filename)
		if err != nil {
			rel = pos.Filename
		}
		rel = filepath.ToSlash(rel)
		matched := false
		for _, w := range wants {
			if w.file == rel && w.line == pos.Line && w.analyzer == d.Analyzer &&
				strings.Contains(d.Message, w.substr) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s:%d: [%s] %s", rel, pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("expected diagnostic did not fire: %s:%d: [%s] containing %q",
				w.file, w.line, w.analyzer, w.substr)
		}
	}
}

// TestCoverage asserts each analyzer has at least one firing fixture, so a
// future analyzer cannot silently ship untested.
func TestCoverage(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src", "fix"))
	if err != nil {
		t.Fatal(err)
	}
	covered := make(map[string]bool)
	for _, w := range collectWants(t, root) {
		covered[w.analyzer] = true
	}
	for _, a := range analyzers.All() {
		if !covered[a.Name] {
			t.Errorf("analyzer %s has no positive fixture under testdata/src/fix", a.Name)
		}
	}
}

// TestSuppression checks that a //vinelint:allow comment present in the
// fixtures silences the diagnostic it names: the Spill function in the
// cache fixture drops a Sync error under suppression and must not appear
// in the results (covered by the exact-match property of
// TestAnalyzersAgainstFixtures, re-asserted here directly).
func TestSuppression(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src", "fix"))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll(nil)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(pkgs, analyzers.All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		if strings.Contains(d.Message, "Sync") {
			t.Errorf("suppressed diagnostic leaked: %s: %s", fmt.Sprintf("%s:%d", pos.Filename, pos.Line), d.Message)
		}
	}
}

package main

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"taskvine/tools/vinelint/internal/analyzers"
	"taskvine/tools/vinelint/internal/lint"
)

// wantRe matches expectation comments in fixture files:
//
//	f.Close() // want:closecheck "error from Close is dropped"
//
// The analyzer named after the colon must report a diagnostic on that line
// whose message contains the quoted substring.
var wantRe = regexp.MustCompile(`//\s*want:(\w+)\s+"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file     string // relative to the fixture module root
	line     int
	analyzer string
	substr   string
	matched  bool
}

// collectWants scans every fixture .go file for want comments.
func collectWants(t *testing.T, root string) []*expectation {
	t.Helper()
	var wants []*expectation
	err := filepath.WalkDir(root, func(p string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(p, ".go") {
			return err
		}
		f, err := os.Open(p)
		if err != nil {
			return err
		}
		defer f.Close()
		rel, _ := filepath.Rel(root, p)
		sc := bufio.NewScanner(f)
		for lineNo := 1; sc.Scan(); lineNo++ {
			for _, m := range wantRe.FindAllStringSubmatch(sc.Text(), -1) {
				wants = append(wants, &expectation{
					file:     filepath.ToSlash(rel),
					line:     lineNo,
					analyzer: m[1],
					substr:   strings.ReplaceAll(m[2], `\"`, `"`),
				})
			}
		}
		return sc.Err()
	})
	if err != nil {
		t.Fatalf("scanning fixtures: %v", err)
	}
	return wants
}

// fixtureTrees lists the per-tree fixture modules under testdata/src. A
// tree named after an analyzer runs only that analyzer; any other tree
// (the shared "fix" module) runs the full suite.
func fixtureTrees(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("reading testdata/src: %v", err)
	}
	var trees []string
	for _, e := range entries {
		if e.IsDir() {
			trees = append(trees, e.Name())
		}
	}
	return trees
}

// loadAndRun loads one fixture module and runs the given analyzers.
func loadAndRun(t *testing.T, root string, suite []*lint.Analyzer) ([]lint.Diagnostic, *lint.Loader) {
	t.Helper()
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatalf("creating loader: %v", err)
	}
	pkgs, err := loader.LoadAll(nil)
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	diags, err := lint.Run(pkgs, suite)
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	return diags, loader
}

// TestAnalyzersAgainstFixtures runs each fixture tree and requires an
// exact match between diagnostics and the // want: expectations — every
// expectation fires, and nothing else does. Single-analyzer trees confirm
// the analyzer in isolation; the shared "fix" tree confirms the full
// suite composes.
func TestAnalyzersAgainstFixtures(t *testing.T) {
	byName := make(map[string]*lint.Analyzer)
	for _, a := range analyzers.All() {
		byName[a.Name] = a
	}
	for _, tree := range fixtureTrees(t) {
		t.Run(tree, func(t *testing.T) {
			suite := analyzers.All()
			if a := byName[tree]; a != nil {
				suite = []*lint.Analyzer{a}
			}
			root, err := filepath.Abs(filepath.Join("testdata", "src", tree))
			if err != nil {
				t.Fatal(err)
			}
			wants := collectWants(t, root)
			if len(wants) == 0 {
				t.Fatal("no // want: expectations found in fixtures")
			}
			diags, loader := loadAndRun(t, root, suite)

			for _, d := range diags {
				pos := loader.Fset.Position(d.Pos)
				rel, err := filepath.Rel(root, pos.Filename)
				if err != nil {
					rel = pos.Filename
				}
				rel = filepath.ToSlash(rel)
				matched := false
				for _, w := range wants {
					if w.file == rel && w.line == pos.Line && w.analyzer == d.Analyzer &&
						strings.Contains(d.Message, w.substr) {
						w.matched = true
						matched = true
					}
				}
				if !matched {
					t.Errorf("unexpected diagnostic: %s:%d: [%s] %s", rel, pos.Line, d.Analyzer, d.Message)
				}
			}
			for _, w := range wants {
				if !w.matched {
					t.Errorf("expected diagnostic did not fire: %s:%d: [%s] containing %q",
						w.file, w.line, w.analyzer, w.substr)
				}
			}
		})
	}
}

// TestCoverage asserts each analyzer has at least one firing fixture
// somewhere under testdata/src, so a future analyzer cannot silently ship
// untested.
func TestCoverage(t *testing.T) {
	covered := make(map[string]bool)
	for _, tree := range fixtureTrees(t) {
		root, err := filepath.Abs(filepath.Join("testdata", "src", tree))
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range collectWants(t, root) {
			covered[w.analyzer] = true
		}
	}
	for _, a := range analyzers.All() {
		if !covered[a.Name] {
			t.Errorf("analyzer %s has no positive fixture under testdata/src", a.Name)
		}
	}
}

// TestSuppression checks that a well-formed //vinelint:ignore comment
// silences exactly the named analyzer on its line: the Spill function in
// the cache fixture drops a Sync error under suppression and must not
// appear in the results (the exact-match property of
// TestAnalyzersAgainstFixtures also covers this; re-asserted here
// directly against the annotated line).
func TestSuppression(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "src", "fix"))
	if err != nil {
		t.Fatal(err)
	}
	// Locate the suppressed line by its marker reason.
	cachePath := filepath.Join(root, "internal", "cache", "cache.go")
	src, err := os.ReadFile(cachePath)
	if err != nil {
		t.Fatal(err)
	}
	supLine := 0
	for i, line := range strings.Split(string(src), "\n") {
		if strings.Contains(line, "fixture exercises suppression") {
			supLine = i + 1
			break
		}
	}
	if supLine == 0 {
		t.Fatal("suppression marker not found in cache fixture")
	}
	diags, loader := loadAndRun(t, root, analyzers.All())
	for _, d := range diags {
		pos := loader.Fset.Position(d.Pos)
		if filepath.Clean(pos.Filename) == cachePath && pos.Line == supLine {
			t.Errorf("suppressed diagnostic leaked: %s:%d: [%s] %s",
				pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
}

// TestSeverities pins the severity split: lockorder findings are warnings
// (structural risk), while goroleak findings are errors.
func TestSeverities(t *testing.T) {
	for tree, want := range map[string]lint.Severity{
		"lockorder": lint.SeverityWarning,
		"goroleak":  lint.SeverityError,
	} {
		root, err := filepath.Abs(filepath.Join("testdata", "src", tree))
		if err != nil {
			t.Fatal(err)
		}
		var suite []*lint.Analyzer
		for _, a := range analyzers.All() {
			if a.Name == tree {
				suite = []*lint.Analyzer{a}
			}
		}
		diags, _ := loadAndRun(t, root, suite)
		if len(diags) == 0 {
			t.Fatalf("%s fixture produced no diagnostics", tree)
		}
		for _, d := range diags {
			if d.Severity != want {
				t.Errorf("%s diagnostic has severity %s, want %s", tree, d.Severity, want)
			}
		}
	}
}

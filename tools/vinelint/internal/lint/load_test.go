package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixRoot resolves the shared fixture module relative to this package's
// directory.
func fixRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("..", "..", "testdata", "src", "fix"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("fixture module missing: %v", err)
	}
	return root
}

// TestLoadAllSkipPredicate verifies the skip callback prunes whole
// subtrees: packages under the skipped directory never load, everything
// else still does.
func TestLoadAllSkipPredicate(t *testing.T) {
	root := fixRoot(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll(func(relDir string) bool {
		return relDir == "internal/other" || strings.HasPrefix(relDir, "internal/other/")
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("skip predicate pruned everything")
	}
	sawCache := false
	for _, pkg := range pkgs {
		if PathHasSegment(pkg.Path, "internal/other") {
			t.Errorf("skipped package %s was loaded", pkg.Path)
		}
		if PathHasSegment(pkg.Path, "internal/cache") {
			sawCache = true
		}
	}
	if !sawCache {
		t.Error("unskipped package internal/cache was not loaded")
	}
}

// TestLoadAllOrdering pins the deterministic package order: sorted by
// import path, stable across repeated loads.
func TestLoadAllOrdering(t *testing.T) {
	root := fixRoot(t)
	var prev []string
	for round := 0; round < 2; round++ {
		loader, err := NewLoader(root)
		if err != nil {
			t.Fatal(err)
		}
		pkgs, err := loader.LoadAll(nil)
		if err != nil {
			t.Fatal(err)
		}
		var paths []string
		for _, pkg := range pkgs {
			paths = append(paths, pkg.Path)
		}
		for i := 1; i < len(paths); i++ {
			if paths[i-1] >= paths[i] {
				t.Fatalf("packages not in sorted order: %q before %q", paths[i-1], paths[i])
			}
		}
		if round > 0 && strings.Join(prev, ",") != strings.Join(paths, ",") {
			t.Fatalf("package order changed between loads:\n  %v\n  %v", prev, paths)
		}
		prev = paths
	}
}

// TestFindModuleRoot verifies go.mod discovery from a nested directory
// and the error when no module encloses the start point.
func TestFindModuleRoot(t *testing.T) {
	root := fixRoot(t)
	got, err := FindModuleRoot(filepath.Join(root, "internal", "cache"))
	if err != nil {
		t.Fatal(err)
	}
	if got != root {
		t.Errorf("FindModuleRoot from subdirectory = %q, want %q", got, root)
	}
	if got, err := FindModuleRoot(root); err != nil || got != root {
		t.Errorf("FindModuleRoot from root = %q, %v; want %q, nil", got, err, root)
	}
	if _, err := FindModuleRoot(t.TempDir()); err == nil {
		t.Error("FindModuleRoot outside any module succeeded, want error")
	}
}

// TestDiagnosticOrderingStability runs the same package set through the
// framework twice with the analyzer list reversed and requires identical
// rendered output: sortDiagnostics, not registration order, owns the
// final ordering.
func TestDiagnosticOrderingStability(t *testing.T) {
	root := fixRoot(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll(nil)
	if err != nil {
		t.Fatal(err)
	}

	// Two order-only-different views of the same trivial analyzer pair,
	// each reporting at every package's first declaration.
	mk := func(name string) *Analyzer {
		return &Analyzer{
			Name: name,
			Doc:  "test analyzer",
			Run: func(pass *Pass) error {
				if len(pass.Pkg.Files) > 0 && len(pass.Pkg.Files[0].Decls) > 0 {
					pass.Report(pass.Pkg.Files[0].Decls[0].Pos(), "marker from %s", name)
				}
				return nil
			},
		}
	}
	a, b := mk("aaa"), mk("bbb")
	render := func(ds []Diagnostic) []string {
		var out []string
		for _, d := range ds {
			p := loader.Fset.Position(d.Pos)
			out = append(out, p.Filename+":"+d.Analyzer+":"+d.Message)
		}
		return out
	}
	fwd, err := Run(pkgs, []*Analyzer{a, b})
	if err != nil {
		t.Fatal(err)
	}
	rev, err := Run(pkgs, []*Analyzer{b, a})
	if err != nil {
		t.Fatal(err)
	}
	f, r := render(fwd), render(rev)
	if strings.Join(f, "\n") != strings.Join(r, "\n") {
		t.Fatalf("diagnostic order depends on analyzer registration order:\nforward:\n%s\nreversed:\n%s",
			strings.Join(f, "\n"), strings.Join(r, "\n"))
	}
}

// TestRunSelectedScoping verifies the reporting selection: per-package
// analyzers stay inside the selected set, while WholeModule analyzers
// still see (and report about) the entire module.
func TestRunSelectedScoping(t *testing.T) {
	root := fixRoot(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadAll(nil)
	if err != nil {
		t.Fatal(err)
	}
	perPkg := &Analyzer{
		Name: "perpkg",
		Doc:  "reports once per visited package",
		Run: func(pass *Pass) error {
			if len(pass.Pkg.Files) > 0 {
				pass.Report(pass.Pkg.Files[0].Package, "visited %s", pass.Pkg.Path)
			}
			return nil
		},
	}
	whole := &Analyzer{
		Name:        "whole",
		Doc:         "reports once per visited package, module-wide",
		WholeModule: true,
		Run: func(pass *Pass) error {
			if len(pass.Pkg.Files) > 0 {
				pass.Report(pass.Pkg.Files[0].Package, "visited %s", pass.Pkg.Path)
			}
			return nil
		},
	}
	selected := map[string]bool{"fix/internal/cache": true}
	diags, err := RunSelected(pkgs, []*Analyzer{perPkg, whole}, selected)
	if err != nil {
		t.Fatal(err)
	}
	var perPkgN, wholeN int
	for _, d := range diags {
		switch d.Analyzer {
		case "perpkg":
			perPkgN++
			if !strings.Contains(d.Message, "fix/internal/cache") {
				t.Errorf("per-package analyzer escaped the selection: %s", d.Message)
			}
		case "whole":
			wholeN++
		}
	}
	if perPkgN != 1 {
		t.Errorf("per-package analyzer ran on %d packages, want 1", perPkgN)
	}
	if wholeN != len(pkgs) {
		t.Errorf("whole-module analyzer ran on %d packages, want %d", wholeN, len(pkgs))
	}
}

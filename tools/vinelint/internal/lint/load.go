package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader type-checks the packages of a single module from source. Standard
// library imports are resolved by the toolchain's source importer; module
// imports are resolved against the module root. The module must be
// dependency-free (true of this repository), which is what lets the loader
// stay this small.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	std     types.ImporterFrom
	pkgs    map[string]*Package // by import path, module packages only
	loading map[string]bool     // cycle guard
}

// NewLoader creates a loader for the module rooted at dir (the directory
// containing go.mod).
func NewLoader(moduleRoot string) (*Loader, error) {
	modPath, err := modulePath(moduleRoot)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	return &Loader{
		Fset:       fset,
		ModuleRoot: moduleRoot,
		ModulePath: modPath,
		std:        std,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found at or above %s", dir)
		}
		dir = parent
	}
}

// modulePath reads the module directive from go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: reading go.mod: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s/go.mod", root)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleRoot, 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.loadModulePackage(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// loadModulePackage parses and type-checks one package of the module,
// memoized by import path. Test files are excluded: vinelint analyzes the
// shipped state machines, and _test packages would require a second
// type-checking universe.
func (l *Loader) loadModulePackage(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
	dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))

	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{Importer: l}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Files: files,
		Types: tpkg,
		Info:  info,
		Fset:  l.Fset,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// goFileNames lists the non-test Go files of dir that apply under the
// current build context (honoring //go:build constraints and file-suffix
// rules, with cgo disabled so pure-Go fallbacks are selected).
func goFileNames(dir string) ([]string, error) {
	ctx := build.Default
	ctx.CgoEnabled = false
	bp, err := ctx.ImportDir(dir, 0)
	if err != nil {
		if _, nogo := err.(*build.NoGoError); nogo {
			return nil, nil
		}
		return nil, err
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	return names, nil
}

// LoadAll walks the module and loads every package (skipping testdata,
// hidden directories, and the linter's own tree when self-exclusion is
// requested via skip). Returned packages are sorted by import path.
func (l *Loader) LoadAll(skip func(relDir string) bool) ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.ModuleRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		rel, _ := filepath.Rel(l.ModuleRoot, p)
		if p != l.ModuleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if skip != nil && rel != "." && skip(filepath.ToSlash(rel)) {
			return filepath.SkipDir
		}
		names, err := goFileNames(p)
		if err != nil {
			return err
		}
		if len(names) == 0 {
			return nil
		}
		if rel == "." {
			paths = append(paths, l.ModulePath)
		} else {
			paths = append(paths, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	var pkgs []*Package
	for _, path := range paths {
		pkg, err := l.loadModulePackage(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

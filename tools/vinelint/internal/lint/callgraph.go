package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Program is the whole-program view shared by every analyzer pass of one
// Run: the full package set plus a lazily built, memoized call graph.
type Program struct {
	Pkgs []*Package
	Fset *token.FileSet

	cg *CallGraph
}

// NewProgram wraps a loaded package set.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{Pkgs: pkgs}
	if len(pkgs) > 0 {
		p.Fset = pkgs[0].Fset
	}
	return p
}

// CallGraph returns the program's call graph, building it on first use.
func (p *Program) CallGraph() *CallGraph {
	if p.cg == nil {
		p.cg = buildCallGraph(p.Pkgs)
	}
	return p.cg
}

// CallGraph maps every function declared in the module to its outgoing
// call edges. Only module-declared callees appear as edge targets;
// standard-library calls are invisible here (analyzers that care about
// them scan syntax directly).
type CallGraph struct {
	Nodes map[*types.Func]*CGNode
}

// Node returns the graph node for fn, or nil if fn has no declaration in
// the loaded module.
func (g *CallGraph) Node(fn *types.Func) *CGNode {
	return g.Nodes[fn]
}

// CGNode is one declared function or method.
type CGNode struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Pkg  *Package
	Out  []CGEdge
}

// CGEdge is one call site. Go marks edges whose call starts a new
// goroutine (directly, or from inside a go'd function literal): such
// callees do not run synchronously on the caller's goroutine, so
// reachability analyses about blocking or held locks must not follow
// them.
type CGEdge struct {
	Callee *CGNode
	Site   token.Pos
	Go     bool
	Defer  bool
}

// buildCallGraph walks every declared function body. Function literals
// are attributed to their enclosing declaration; their bodies are entered
// only when the literal runs in a context the enclosing function controls
// (invoked in place, deferred, or launched by a go statement — the last
// with the Go flag set). A literal stored or passed as an argument is not
// entered: when and where it runs is the callee's business.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Nodes: make(map[*types.Func]*CGNode)}
	// First pass: a node per declaration, so edges can resolve forward
	// and cross-package references.
	type declSite struct {
		node *CGNode
	}
	var bodies []declSite
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, d := range file.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &CGNode{Fn: fn, Decl: fd, Pkg: pkg}
				g.Nodes[fn] = node
				bodies = append(bodies, declSite{node: node})
			}
		}
	}
	for _, b := range bodies {
		collectEdges(g, b.node, b.node.Decl.Body, false, false)
	}
	return g
}

// collectEdges records call edges out of body, attributed to node.
func collectEdges(g *CallGraph, node *CGNode, body ast.Node, goCtx, deferCtx bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			collectCall(g, node, n.Call, true, deferCtx)
			return false
		case *ast.DeferStmt:
			collectCall(g, node, n.Call, goCtx, true)
			return false
		case *ast.FuncLit:
			// Reached directly: the literal is stored or passed as an
			// argument. Its body is not this function's control flow.
			return false
		case *ast.CallExpr:
			collectCall(g, node, n, goCtx, deferCtx)
			return false
		}
		return true
	})
}

// collectCall records one call site and descends into its operands.
func collectCall(g *CallGraph, node *CGNode, call *ast.CallExpr, goCtx, deferCtx bool) {
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		// Invoked (or deferred / go'd) in place: the body runs here.
		collectEdges(g, node, fl.Body, goCtx, deferCtx)
	} else if callee := CalleeFunc(node.Pkg.Info, call); callee != nil {
		if target, ok := g.Nodes[callee]; ok {
			node.Out = append(node.Out, CGEdge{
				Callee: target,
				Site:   call.Pos(),
				Go:     goCtx,
				Defer:  deferCtx,
			})
		}
	}
	// Arguments (and a non-literal Fun expression) evaluate synchronously
	// in the caller, whatever the call itself does.
	for _, arg := range call.Args {
		collectEdges(g, node, arg, goCtx, deferCtx)
	}
	if _, isLit := call.Fun.(*ast.FuncLit); !isLit {
		collectEdges(g, node, call.Fun, goCtx, deferCtx)
	}
}

// CalleeFunc resolves the static callee of a call expression, or nil for
// indirect calls, conversions, and builtins.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.ParenExpr:
		return CalleeFunc(info, &ast.CallExpr{Fun: fun.X, Args: call.Args})
	}
	return nil
}

// WalkSync traverses the parts of body that execute synchronously on the
// enclosing function's goroutine: go-statement subtrees are skipped
// entirely, and function-literal bodies are entered only when the literal
// is invoked in place or deferred — not when it is stored or passed as an
// argument, where the callee decides if and when it runs. visit returning
// false prunes the subtree, mirroring ast.Inspect.
func WalkSync(body ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			visit(n)
			return false
		case *ast.FuncLit:
			// Reached directly (not via the CallExpr/DeferStmt cases):
			// stored or passed, so its body is asynchronous to us.
			return false
		case *ast.CallExpr:
			if !visit(n) {
				return false
			}
			if fl, ok := n.Fun.(*ast.FuncLit); ok {
				WalkSync(fl.Body, visit)
			} else {
				WalkSync(n.Fun, visit)
			}
			for _, arg := range n.Args {
				WalkSync(arg, visit)
			}
			return false
		}
		return visit(n)
	})
}

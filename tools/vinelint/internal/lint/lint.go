// Package lint is a minimal, dependency-free analysis framework in the
// spirit of golang.org/x/tools/go/analysis, built on the standard library
// only (go/ast, go/types, go/importer). It exists because vinelint's
// invariants are domain-specific — simulator determinism, lock discipline,
// wire-protocol completeness, transfer finalization — and the container
// image this repository builds in carries no third-party modules.
//
// The shape mirrors go/analysis closely (Analyzer, Pass, Diagnostic) so the
// analyzers can be ported to the real multichecker verbatim if x/tools ever
// becomes available.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //vinelint:allow suppression comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run inspects one package and reports findings via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// All lists every loaded module package, for cross-package analyzers
	// (protocomplete cross-checks protocol constants against dispatch
	// switches in other packages).
	All  []*Package
	Fset *token.FileSet

	report func(Diagnostic)
}

// Report records a finding.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path (e.g. taskvine/internal/sim).
	Path string
	// Dir is the on-disk directory.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Fset  *token.FileSet
}

// allowRe matches suppression comments: //vinelint:allow <name>[ reason].
// A suppression on a line silences that analyzer's diagnostics on the same
// line; a suppression comment standing alone silences the following line.
var allowRe = regexp.MustCompile(`//\s*vinelint:allow\s+([a-z]+)`)

// suppressions maps "file:line" -> set of analyzer names silenced there.
func suppressions(fset *token.FileSet, files []*ast.File) map[string]map[string]bool {
	sup := make(map[string]map[string]bool)
	add := func(file string, line int, name string) {
		key := fmt.Sprintf("%s:%d", file, line)
		if sup[key] == nil {
			sup[key] = make(map[string]bool)
		}
		sup[key][name] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				// Same line and the next: a standalone comment suppresses
				// the statement below it, a trailing comment its own line.
				add(pos.Filename, pos.Line, m[1])
				add(pos.Filename, pos.Line+1, m[1])
			}
		}
	}
	return sup
}

// Run applies every analyzer to every package and returns surviving
// diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		sup := suppressions(pkg.Fset, pkg.Files)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				All:      pkgs,
				Fset:     pkg.Fset,
			}
			pass.report = func(d Diagnostic) {
				p := pkg.Fset.Position(d.Pos)
				if sup[fmt.Sprintf("%s:%d", p.Filename, p.Line)][d.Analyzer] {
					return
				}
				out = append(out, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out, nil
}

// PathHasSegment reports whether the import path contains the given
// slash-separated segment sequence on segment boundaries, e.g.
// PathHasSegment("taskvine/internal/sim", "internal/sim") is true but
// PathHasSegment("taskvine/internal/simx", "internal/sim") is not.
func PathHasSegment(path, segment string) bool {
	if path == segment {
		return true
	}
	if strings.HasSuffix(path, "/"+segment) {
		return true
	}
	return strings.Contains(path, "/"+segment+"/") || strings.HasPrefix(path, segment+"/")
}

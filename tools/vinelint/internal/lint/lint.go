// Package lint is a minimal, dependency-free analysis framework in the
// spirit of golang.org/x/tools/go/analysis, built on the standard library
// only (go/ast, go/types, go/importer). It exists because vinelint's
// invariants are domain-specific — simulator determinism, lock discipline,
// wire-protocol completeness, transfer finalization, event-loop latency —
// and the container image this repository builds in carries no third-party
// modules.
//
// The shape mirrors go/analysis closely (Analyzer, Pass, Diagnostic) so the
// analyzers can be ported to the real multichecker verbatim if x/tools ever
// becomes available.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Severity ranks a finding. Every severity fails the lint run — the split
// exists so CI annotations and humans can triage output, not so warnings
// can rot. The zero value is SeverityError on purpose: an analyzer must
// opt in to being "only" a warning.
type Severity int

const (
	// SeverityError marks a finding that is a defect on its own.
	SeverityError Severity = iota
	// SeverityWarning marks a finding that is a structural risk (e.g. a
	// potential lock-order inversion) rather than a proven defect.
	SeverityWarning
)

// String returns "error" or "warning".
func (s Severity) String() string {
	if s == SeverityWarning {
		return "warning"
	}
	return "error"
}

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //vinelint:ignore suppression comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Severity is attached to every diagnostic the analyzer reports.
	// The zero value is SeverityError.
	Severity Severity
	// WholeModule marks analyzers whose invariant is a property of the
	// module as a whole (protocomplete, lockorder, metricparity). They run
	// over every loaded package even when the caller restricts the
	// reported selection to a subtree, because hiding half the module
	// would silently weaken the invariant.
	WholeModule bool
	// Run inspects one package and reports findings via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// All lists every loaded module package, for cross-package analyzers
	// (protocomplete cross-checks protocol constants against dispatch
	// switches in other packages).
	All  []*Package
	Fset *token.FileSet
	// Prog is the whole-program view shared by every pass of one Run:
	// it owns the memoized call graph.
	Prog *Program

	report func(Diagnostic)
}

// Report records a finding.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Severity: p.Analyzer.Severity,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Severity Severity
	Pos      token.Pos
	Message  string
}

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path (e.g. taskvine/internal/sim).
	Path string
	// Dir is the on-disk directory.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	Fset  *token.FileSet
}

// FrameworkAnalyzer is the analyzer name attached to diagnostics produced
// by the framework itself (malformed suppression comments).
const FrameworkAnalyzer = "vinelint"

// ignoreRe matches suppression comments:
//
//	//vinelint:ignore <analyzer> <reason>
//
// The reason is mandatory: a suppression with no written justification is
// itself reported as a diagnostic. A suppression on a line silences that
// analyzer's diagnostics on the same line; a comment standing alone
// silences the following line.
var ignoreRe = regexp.MustCompile(`//\s*vinelint:ignore(?:\s+([a-z]+))?\s*(.*)`)

// legacyAllowRe matches the retired vinelint:allow grammar, which carried
// no mandatory reason.
var legacyAllowRe = regexp.MustCompile(`//\s*vinelint:allow\b`)

// suppressions maps "file:line" -> set of analyzer names silenced there,
// and reports malformed suppression comments as framework diagnostics.
func suppressions(fset *token.FileSet, files []*ast.File) (map[string]map[string]bool, []Diagnostic) {
	sup := make(map[string]map[string]bool)
	var bad []Diagnostic
	add := func(file string, line int, name string) {
		key := fmt.Sprintf("%s:%d", file, line)
		if sup[key] == nil {
			sup[key] = make(map[string]bool)
		}
		sup[key][name] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if legacyAllowRe.MatchString(c.Text) {
					bad = append(bad, Diagnostic{
						Analyzer: FrameworkAnalyzer,
						Severity: SeverityError,
						Pos:      c.Pos(),
						Message:  "vinelint:allow is retired: use //vinelint:ignore <analyzer> <reason>",
					})
					continue
				}
				if !strings.Contains(c.Text, "vinelint:ignore") {
					continue
				}
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				name, reason := m[1], strings.TrimSpace(m[2])
				pos := fset.Position(c.Pos())
				if name == "" {
					bad = append(bad, Diagnostic{
						Analyzer: FrameworkAnalyzer,
						Severity: SeverityError,
						Pos:      c.Pos(),
						Message:  "vinelint:ignore names no analyzer: use //vinelint:ignore <analyzer> <reason>",
					})
					continue
				}
				if reason == "" {
					bad = append(bad, Diagnostic{
						Analyzer: FrameworkAnalyzer,
						Severity: SeverityError,
						Pos:      c.Pos(),
						Message:  fmt.Sprintf("vinelint:ignore %s has no reason: every suppression must say why the finding is safe", name),
					})
					continue
				}
				// Same line and the next: a standalone comment suppresses
				// the statement below it, a trailing comment its own line.
				add(pos.Filename, pos.Line, name)
				add(pos.Filename, pos.Line+1, name)
			}
		}
	}
	return sup, bad
}

// Run applies every analyzer to every package and returns surviving
// diagnostics in a deterministic order.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunSelected(pkgs, analyzers, nil)
}

// RunSelected applies the analyzers with an optional reporting selection:
// when selected is non-nil, per-package analyzers run only on packages
// whose import path is in the set, while WholeModule analyzers still run
// over everything (their invariants span the module). A nil selection
// means "all packages".
func RunSelected(pkgs []*Package, analyzers []*Analyzer, selected map[string]bool) ([]Diagnostic, error) {
	var out []Diagnostic
	prog := NewProgram(pkgs)
	// Suppressions are collected module-wide: whole-module analyzers
	// report at positions in packages other than the one their pass runs
	// on, and the ignore comment lives next to the finding.
	sup := make(map[string]map[string]bool)
	for _, pkg := range pkgs {
		pkgSup, bad := suppressions(pkg.Fset, pkg.Files)
		for k, v := range pkgSup {
			sup[k] = v
		}
		if selected == nil || selected[pkg.Path] {
			out = append(out, bad...)
		}
	}
	for _, pkg := range pkgs {
		inSelection := selected == nil || selected[pkg.Path]
		for _, a := range analyzers {
			if !inSelection && !a.WholeModule {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Pkg:      pkg,
				All:      pkgs,
				Fset:     pkg.Fset,
				Prog:     prog,
			}
			pass.report = func(d Diagnostic) {
				p := pkg.Fset.Position(d.Pos)
				if sup[fmt.Sprintf("%s:%d", p.Filename, p.Line)][d.Analyzer] {
					return
				}
				out = append(out, d)
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sortDiagnostics(pkgs, out)
	return out, nil
}

// sortDiagnostics orders findings by (file, line, column, analyzer,
// message) so output is stable across runs and across incidental changes
// in analyzer registration order.
func sortDiagnostics(pkgs []*Package, ds []Diagnostic) {
	if len(pkgs) == 0 {
		return
	}
	fset := pkgs[0].Fset
	sort.SliceStable(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		if ds[i].Analyzer != ds[j].Analyzer {
			return ds[i].Analyzer < ds[j].Analyzer
		}
		return ds[i].Message < ds[j].Message
	})
}

// PathHasSegment reports whether the import path contains the given
// slash-separated segment sequence on segment boundaries, e.g.
// PathHasSegment("taskvine/internal/sim", "internal/sim") is true but
// PathHasSegment("taskvine/internal/simx", "internal/sim") is not.
func PathHasSegment(path, segment string) bool {
	if path == segment {
		return true
	}
	if strings.HasSuffix(path, "/"+segment) {
		return true
	}
	return strings.Contains(path, "/"+segment+"/") || strings.HasPrefix(path, segment+"/")
}

// TypeIs reports whether t (after stripping one pointer) is the named type
// pkgPath.name.
func TypeIs(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == pkgPath && obj.Name() == name
}

package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"taskvine/tools/vinelint/internal/lint"
)

// MetricParity statically enforces the observability contract that the
// runtime parity test used to probe by reflection: a simulated run and a
// real run of one workflow must expose identical, well-formed vine_*
// metric families.
//
// Structurally, parity holds because every substrate registers through
// one constructor — internal/metrics.ForRegistry — so the analyzer pins
// that shape: instrument registrations (Registry.Counter/CounterVec/
// Gauge/GaugeVec/Histogram with a vine_* name) may appear only inside
// internal/metrics; names are string literals, globally unique, counters
// end in _total while gauges and histograms do not, and the _bytes /
// _seconds unit suffixes are terminal (modulo a trailing _total). Every
// instrument-typed field of VineMetrics must be assigned in ForRegistry's
// composite literal (a field added to the struct but not the constructor
// would be nil and panic on first use), and any other vine_* string
// literal in shipped code — the trace-kind family map, status endpoints —
// must name a family ForRegistry actually registers.
var MetricParity = &lint.Analyzer{
	Name:        "metricparity",
	Doc:         `enforce vine_* instrument naming, single registration through internal/metrics, and constructor/struct parity`,
	WholeModule: true,
	Run:         runMetricParity,
}

// instrumentCtors maps registry method names to whether they create a
// counter (and therefore need the _total suffix).
var instrumentCtors = map[string]bool{
	"Counter": true, "CounterVec": true,
	"Gauge": false, "GaugeVec": false, "Histogram": false,
}

type registration struct {
	name    string
	counter bool
	pos     token.Pos
	pkg     *lint.Package
	lit     *ast.BasicLit
}

func runMetricParity(pass *lint.Pass) error {
	// Whole-module: run once, from the first pass.
	if len(pass.All) == 0 || pass.Pkg != pass.All[0] {
		return nil
	}

	regs, litSites := collectRegistrations(pass.All)
	if len(regs) == 0 {
		return nil // module has no vine_* instruments
	}

	registered := make(map[string]*registration)
	names := make([]string, 0, len(regs))
	for i := range regs {
		r := &regs[i]
		if !lint.PathHasSegment(r.pkg.Path, "internal/metrics") {
			pass.Report(r.pos,
				"instrument %q is registered outside internal/metrics: add it to VineMetrics/ForRegistry so simulated and real runs expose identical families", r.name)
		}
		if prev, dup := registered[r.name]; dup {
			prevPos := prev.pkg.Fset.Position(prev.pos)
			pass.Report(r.pos,
				"instrument %q is registered twice (first at %s:%d): family names must be unique", r.name, prevPos.Filename, prevPos.Line)
			continue
		}
		registered[r.name] = r
		names = append(names, r.name)
		checkInstrumentName(pass, r)
	}
	sort.Strings(names)

	// Any other vine_* literal must reference a registered family — this
	// is what keeps the trace-kind family map honest.
	for lit := range litSites {
		name := strings.Trim(lit.Value, `"`)
		if registered[name] == nil {
			pass.Report(lit.Pos(),
				"%q does not match any family registered by ForRegistry: registered families are checked statically, fix the name or register it", name)
		}
	}

	checkBytesCounterPairs(pass, regs, registered)
	checkVineMetricsStruct(pass)
	return nil
}

// checkBytesCounterPairs requires every byte-volume counter to ship with
// an event-count companion. A lone <stem>_bytes_total cannot be turned
// into an average object size and is the signature of a half-added
// family — the exact hazard when a tier grows a new instrument set, as
// with vine_cache_mem_insert_bytes_total / vine_cache_mem_inserts_total
// or vine_cache_mem_spill_bytes_total / vine_cache_mem_spills_total. The
// companion is the pluralized stem: either <stem>s_total exactly, or any
// counter prefixed <stem>s_ (vine_transfer_bytes_total is satisfied by
// vine_transfers_completed_total).
func checkBytesCounterPairs(pass *lint.Pass, regs []registration, registered map[string]*registration) {
	for i := range regs {
		r := &regs[i]
		if !r.counter || !strings.HasSuffix(r.name, "_bytes_total") {
			continue
		}
		stem := strings.TrimSuffix(r.name, "_bytes_total")
		if registered[stem+"s_total"] != nil {
			continue
		}
		paired := false
		for name, companion := range registered {
			if companion.counter && strings.HasPrefix(name, stem+"s_") {
				paired = true
				break
			}
		}
		if !paired {
			pass.Report(r.pos,
				"byte counter %q has no event-count companion (%ss_total or %ss_*): register the count alongside the volume so the family stays interpretable", r.name, stem, stem)
		}
	}
}

// collectRegistrations finds every Registry instrument-constructor call
// with a vine_* string-literal name, plus every other vine_* string
// literal (mapped to its package) for the reference check.
func collectRegistrations(pkgs []*lint.Package) ([]registration, map[*ast.BasicLit]*lint.Package) {
	var regs []registration
	lits := make(map[*ast.BasicLit]*lint.Package)
	regLits := make(map[*ast.BasicLit]bool)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					sel, ok := n.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					isCounter, isCtor := instrumentCtors[sel.Sel.Name]
					if !isCtor || len(n.Args) == 0 {
						return true
					}
					recv := pkg.Info.TypeOf(sel.X)
					if recv == nil || !isMetricsRegistry(recv) {
						return true
					}
					lit, ok := n.Args[0].(*ast.BasicLit)
					if !ok || lit.Kind != token.STRING || !strings.HasPrefix(lit.Value, `"vine_`) {
						return true
					}
					regs = append(regs, registration{
						name:    strings.Trim(lit.Value, `"`),
						counter: isCounter,
						pos:     n.Pos(),
						pkg:     pkg,
						lit:     lit,
					})
					regLits[lit] = true
				case *ast.BasicLit:
					if n.Kind == token.STRING && strings.HasPrefix(n.Value, `"vine_`) && len(n.Value) > len(`"vine_"`) {
						lits[n] = pkg
					}
				}
				return true
			})
		}
	}
	for lit := range regLits {
		delete(lits, lit)
	}
	return regs, lits
}

// isMetricsRegistry reports whether t is (a pointer to) the Registry type
// of an internal/metrics package.
func isMetricsRegistry(t types.Type) bool {
	named := namedOf(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil &&
		lint.PathHasSegment(obj.Pkg().Path(), "internal/metrics")
}

// checkInstrumentName enforces the suffix conventions on one family name.
func checkInstrumentName(pass *lint.Pass, r *registration) {
	name := r.name
	if r.counter && !strings.HasSuffix(name, "_total") {
		pass.Report(r.pos, "counter %q must end in _total", name)
	}
	if !r.counter && strings.HasSuffix(name, "_total") {
		pass.Report(r.pos, "%q ends in _total but is not a counter: _total is reserved for monotonically increasing counts", name)
	}
	base := strings.TrimSuffix(name, "_total")
	for _, unit := range []string{"_bytes", "_seconds"} {
		if strings.Contains(base, unit+"_") {
			pass.Report(r.pos, "%q buries the %s unit mid-name: unit suffixes must be terminal (before an optional _total)", name, unit)
		}
	}
}

// checkVineMetricsStruct verifies that every instrument-typed field of
// VineMetrics is assigned inside ForRegistry's composite literal — the
// static replacement for the old reflection-based nil-field probe.
func checkVineMetricsStruct(pass *lint.Pass) {
	for _, pkg := range pass.All {
		if !lint.PathHasSegment(pkg.Path, "internal/metrics") {
			continue
		}
		var st *ast.StructType
		var forReg *ast.FuncDecl
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.GenDecl:
					for _, s := range d.Specs {
						ts, ok := s.(*ast.TypeSpec)
						if !ok || ts.Name.Name != "VineMetrics" {
							continue
						}
						if s2, ok := ts.Type.(*ast.StructType); ok {
							st = s2
						}
					}
				case *ast.FuncDecl:
					if d.Recv == nil && d.Name.Name == "ForRegistry" {
						forReg = d
					}
				}
			}
		}
		if st == nil || forReg == nil {
			continue
		}
		assigned := make(map[string]bool)
		ast.Inspect(forReg.Body, func(n ast.Node) bool {
			cl, ok := n.(*ast.CompositeLit)
			if !ok {
				return true
			}
			if id, ok := cl.Type.(*ast.Ident); !ok || id.Name != "VineMetrics" {
				return true
			}
			for _, elt := range cl.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					if key, ok := kv.Key.(*ast.Ident); ok {
						assigned[key.Name] = true
					}
				}
			}
			return true
		})
		for _, f := range st.Fields.List {
			if !isInstrumentField(pkg, f) {
				continue
			}
			for _, name := range f.Names {
				if !assigned[name.Name] {
					pass.Report(name.Pos(),
						"VineMetrics.%s is not assigned in ForRegistry: the field would be nil and panic on first use", name.Name)
				}
			}
		}
	}
}

// isInstrumentField reports whether a struct field's type is a pointer to
// one of the instrument types of the metrics package.
func isInstrumentField(pkg *lint.Package, f *ast.Field) bool {
	t := pkg.Info.TypeOf(f.Type)
	named := namedOf(t)
	if named == nil || named.Obj().Pkg() == nil {
		return false
	}
	switch named.Obj().Name() {
	case "Counter", "CounterVec", "Gauge", "GaugeVec", "Histogram":
		return lint.PathHasSegment(named.Obj().Pkg().Path(), "internal/metrics")
	}
	return false
}

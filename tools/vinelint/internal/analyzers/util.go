package analyzers

import (
	"fmt"
	"go/token"
	"strings"

	"taskvine/tools/vinelint/internal/lint"
)

// markerLines collects the "file:line" positions of comments containing
// the given annotation marker (e.g. "hotpath-ok:" or "eventloop-ok:").
func markerLines(pass *lint.Pass, marker string) map[string]bool {
	ok := make(map[string]bool)
	for _, file := range pass.Pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if !strings.Contains(c.Text, marker) {
					continue
				}
				p := pass.Fset.Position(c.Pos())
				ok[fmt.Sprintf("%s:%d", p.Filename, p.Line)] = true
			}
		}
	}
	return ok
}

// markedOK reports whether pos carries one of the collected annotations on
// its own line or the line directly above.
func markedOK(pass *lint.Pass, ok map[string]bool, pos token.Pos) bool {
	p := pass.Fset.Position(pos)
	return ok[fmt.Sprintf("%s:%d", p.Filename, p.Line)] ||
		ok[fmt.Sprintf("%s:%d", p.Filename, p.Line-1)]
}

package analyzers

import (
	"go/ast"
	"go/types"

	"taskvine/tools/vinelint/internal/lint"
)

// HotPath guards the incremental scheduler's complexity contract: dispatch
// cost must stay O(changed), not O(everything). Any package that defines a
// schedule() function gets its same-package call graph walked from that
// root, and every function reachable from it is scanned for the two
// constructs that quietly reintroduce full rescans — sort.Slice calls and
// whole-map iteration. Sites that are genuinely bounded (a rebuild that
// runs only on membership change, a walk over a naturally small set) carry
// a `// hotpath-ok: <reason>` annotation on the same or preceding line.
var HotPath = &lint.Analyzer{
	Name: "hotpath",
	Doc: `flag sort.Slice and map-wide iteration in functions reachable from
schedule() unless annotated with // hotpath-ok: <reason>, keeping the
scheduler's O(changed) complexity contract visible and enforced`,
	Run: runHotPath,
}

func runHotPath(pass *lint.Pass) error {
	// Collect this package's function declarations by name. Reachability is
	// name-based (method calls resolve by selector name), which
	// over-approximates across receiver types — acceptable for a guard
	// whose escape hatch is a one-line annotation.
	decls := map[string][]*ast.FuncDecl{}
	for _, file := range pass.Pkg.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				decls[fd.Name.Name] = append(decls[fd.Name.Name], fd)
			}
		}
	}
	if len(decls["schedule"]) == 0 {
		return nil // no scheduler entry point in this package
	}

	// Breadth-first walk of same-package call edges from schedule. Calls
	// inside function literals count: deferred work and timer callbacks run
	// on the hot path too.
	reach := map[string]bool{"schedule": true}
	queue := []string{"schedule"}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		for _, fd := range decls[name] {
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				var callee string
				switch f := call.Fun.(type) {
				case *ast.Ident:
					callee = f.Name
				case *ast.SelectorExpr:
					callee = f.Sel.Name
				}
				if callee != "" && len(decls[callee]) > 0 && !reach[callee] {
					reach[callee] = true
					queue = append(queue, callee)
				}
				return true
			})
		}
	}

	ok := markerLines(pass, "hotpath-ok:")
	for name := range reach {
		for _, fd := range decls[name] {
			checkHotFunc(pass, fd, ok)
		}
	}
	return nil
}

// checkHotFunc scans one reachable function for per-pass sorts and
// whole-map iteration.
func checkHotFunc(pass *lint.Pass, fd *ast.FuncDecl, ok map[string]bool) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, isSel := n.Fun.(*ast.SelectorExpr)
			if !isSel || sel.Sel.Name != "Slice" {
				return true
			}
			id, isID := sel.X.(*ast.Ident)
			if !isID {
				return true
			}
			if pn, isPkg := pass.Pkg.Info.Uses[id].(*types.PkgName); isPkg &&
				pn.Imported().Path() == "sort" && !markedOK(pass, ok, n.Pos()) {
				pass.Report(n.Pos(),
					"sort.Slice in %s is reachable from schedule(): sort on change, not per pass (or annotate // hotpath-ok: <reason>)",
					fd.Name.Name)
			}
		case *ast.RangeStmt:
			t := pass.Pkg.Info.TypeOf(n.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap && !markedOK(pass, ok, n.Pos()) {
				pass.Report(n.Pos(),
					"map iteration in %s is reachable from schedule(): walk an index of changed entries, not the whole map (or annotate // hotpath-ok: <reason>)",
					fd.Name.Name)
			}
		}
		return true
	})
}

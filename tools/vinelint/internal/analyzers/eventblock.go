package analyzers

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"taskvine/tools/vinelint/internal/lint"
)

// EventBlock guards the latency contract of the two single-threaded
// message loops: the manager's event loop (Manager.handleEvent /
// handleBatch own all scheduling state) and the worker's connection read
// loop. Every millisecond one of those loops spends blocked is a
// millisecond during which no task is scheduled and no worker message is
// drained, so no blocking construct may be synchronously reachable from
// them:
//
//   - time.Sleep
//   - filesystem calls (os.Open/ReadFile/Stat/Rename/...)
//   - network dials, listens, and net/http calls
//   - bulk protocol I/O: Conn.SendPayload, Conn.Recv (except the loop's
//     own receive in the root function), and protocol.Dial. Small
//     control-frame Sends are permitted: the connection serializes
//     writers and the frames are bounded.
//   - channel sends, unless the send is a select case with a default
//     (non-blocking), or the channel arrived as a parameter of the
//     enclosing function (reply channels are caller-supplied and sized
//     for exactly one message)
//
// Reachability follows same-package calls only, skipping go statements
// and function literals that are merely passed along: work handed to
// another goroutine is exactly the sanctioned fix. Sites that are
// provably bounded carry a `// eventloop-ok: <reason>` annotation.
var EventBlock = &lint.Analyzer{
	Name: "eventblock",
	Doc: `flag blocking I/O, sleeps, and unbounded channel sends reachable
from the manager event loop or the worker message loop unless annotated
with // eventloop-ok: <reason>`,
	Run: runEventBlock,
}

// eventblockRoots names the loop-body functions per package scope. The
// manager's loop dispatches through handleBatch/handleEvent; the worker's
// through readLoop; the shard router's result pump and lease balancer are
// latency-critical in the same way (a blocked pump delays quota release
// for every tenant on its shard).
var eventblockRoots = map[string][]string{
	"internal/core":   {"handleEvent", "handleBatch"},
	"internal/worker": {"readLoop"},
	"internal/shard":  {"pump", "balanceLoop"},
}

// osBlocking is the set of os-package calls that hit the filesystem.
var osBlocking = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "ReadDir": true,
	"Stat": true, "Lstat": true, "Readlink": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true,
	"Rename": true, "Remove": true, "RemoveAll": true,
	"Chmod": true, "Truncate": true, "Link": true, "Symlink": true,
}

func runEventBlock(pass *lint.Pass) error {
	var rootNames []string
	for seg, names := range eventblockRoots {
		if lint.PathHasSegment(pass.Pkg.Path, seg) {
			rootNames = names
		}
	}
	if rootNames == nil {
		return nil
	}
	cg := pass.Prog.CallGraph()

	// Seed the walk with this package's root functions.
	isRootName := make(map[string]bool)
	for _, n := range rootNames {
		isRootName[n] = true
	}
	// reachedFrom maps each synchronously reachable function to the loop
	// roots that reach it, for diagnostics that name their loop.
	reachedFrom := make(map[*lint.CGNode]map[string]bool)
	var queue []*lint.CGNode
	for _, node := range cg.Nodes {
		if node.Pkg == pass.Pkg && isRootName[node.Decl.Name.Name] {
			reachedFrom[node] = map[string]bool{node.Decl.Name.Name: true}
			queue = append(queue, node)
		}
	}
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		for _, e := range node.Out {
			// A go edge hands the work to another goroutine — that is the
			// sanctioned fix, not a finding. Cross-package calls are out of
			// scope: the loop packages own their blocking discipline, and
			// helper packages (cache, tardir) are audited at their call
			// sites, not their internals.
			if e.Go || e.Callee.Pkg != pass.Pkg {
				continue
			}
			if reachedFrom[e.Callee] == nil {
				reachedFrom[e.Callee] = make(map[string]bool)
			}
			grew := false
			for r := range reachedFrom[node] {
				if !reachedFrom[e.Callee][r] {
					reachedFrom[e.Callee][r] = true
					grew = true
				}
			}
			if grew {
				queue = append(queue, e.Callee)
			}
		}
	}

	ok := markerLines(pass, "eventloop-ok:")
	for node, roots := range reachedFrom {
		checkEventFunc(pass, node, rootsLabel(roots), isRootName[node.Decl.Name.Name], ok)
	}
	return nil
}

// rootsLabel renders the set of loop roots reaching a function.
func rootsLabel(roots map[string]bool) string {
	names := make([]string, 0, len(roots))
	for r := range roots {
		names = append(names, r)
	}
	sort.Strings(names)
	return strings.Join(names, "/")
}

// checkEventFunc scans one reachable function for blocking constructs.
func checkEventFunc(pass *lint.Pass, node *lint.CGNode, roots string, isRoot bool, ok map[string]bool) {
	fname := node.Decl.Name.Name
	// Sends appearing as cases of a select that has a default clause are
	// non-blocking by construction.
	nonblocking := make(map[ast.Stmt]bool)
	lint.WalkSync(node.Decl.Body, func(n ast.Node) bool {
		sel, okSel := n.(*ast.SelectStmt)
		if !okSel {
			return true
		}
		hasDefault := false
		for _, c := range sel.Body.List {
			if cc, okCC := c.(*ast.CommClause); okCC && cc.Comm == nil {
				hasDefault = true
			}
		}
		if hasDefault {
			for _, c := range sel.Body.List {
				if cc, okCC := c.(*ast.CommClause); okCC && cc.Comm != nil {
					nonblocking[cc.Comm] = true
				}
			}
		}
		return true
	})
	params := paramObjects(pass, node.Decl)

	lint.WalkSync(node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if what := bannedCall(pass, n, isRoot); what != "" && !markedOK(pass, ok, n.Pos()) {
				pass.Report(n.Pos(),
					"%s in %s is synchronously reachable from the %s loop: move it to a helper goroutine or annotate // eventloop-ok: <reason>",
					what, fname, roots)
			}
		case *ast.SendStmt:
			if nonblocking[n] || chanFromParam(pass, params, n.Chan) || markedOK(pass, ok, n.Pos()) {
				return true
			}
			pass.Report(n.Pos(),
				"channel send in %s may block the %s loop: guard it with a select+default, send on a caller-supplied reply channel, or annotate // eventloop-ok: <reason>",
				fname, roots)
		}
		return true
	})
}

// bannedCall classifies a call as a blocking construct, returning a short
// label for the diagnostic or "" when the call is fine.
func bannedCall(pass *lint.Pass, call *ast.CallExpr, isRoot bool) string {
	fn := lint.CalleeFunc(pass.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	path, name := fn.Pkg().Path(), fn.Name()
	switch {
	case path == "time" && name == "Sleep":
		return "time.Sleep"
	case path == "os" && osBlocking[name]:
		return "os." + name
	case path == "net" && (strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "Listen") || strings.HasPrefix(name, "Lookup")):
		return "net." + name
	case path == "net/http":
		return "net/http." + name
	case lint.PathHasSegment(path, "internal/protocol"):
		switch name {
		case "Recv":
			if isRoot {
				return "" // the loop's own message pump
			}
			return "protocol Recv"
		case "SendPayload":
			return "protocol SendPayload (bulk transfer)"
		case "Dial":
			return "protocol Dial"
		}
	}
	return ""
}

// paramObjects collects the type objects of a declaration's parameters.
func paramObjects(pass *lint.Pass, fd *ast.FuncDecl) map[types.Object]bool {
	out := make(map[types.Object]bool)
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := pass.Pkg.Info.Defs[name]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// chanFromParam reports whether the channel expression's leftmost base
// identifier is a parameter of the enclosing function: reply channels
// handed in by the caller are sized by the caller, so a send on them is
// the caller's latency contract, not the loop's.
func chanFromParam(pass *lint.Pass, params map[types.Object]bool, ch ast.Expr) bool {
	for {
		switch e := ch.(type) {
		case *ast.ParenExpr:
			ch = e.X
		case *ast.SelectorExpr:
			ch = e.X
		case *ast.IndexExpr:
			ch = e.X
		case *ast.Ident:
			return params[pass.Pkg.Info.Uses[e]]
		default:
			return false
		}
	}
}

package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"taskvine/tools/vinelint/internal/lint"
)

// ProtoComplete cross-checks the wire protocol: every message-type constant
// declared in internal/protocol must be (a) produced somewhere in the
// module — assigned or composite-literal'd into a Message.Type — and
// (b) dispatched by the receiving side's switch. The receiving side is read
// off the constant's doc comment: "manager→worker" messages must have a
// dispatch arm in an internal/worker package, "worker→manager" messages in
// internal/core, and bidirectional or undocumented messages anywhere.
//
// This is the analyzer that catches the classic protocol drift: a message
// added to the sender but never wired into the receiver's switch (or
// vice versa), which at runtime degrades into a silently ignored frame.
var ProtoComplete = &lint.Analyzer{
	Name: "protocomplete",
	Doc: `cross-check that every Type* message constant in internal/protocol
has a producer and a dispatch arm on the correct side of the wire`,
	WholeModule: true,
	Run:         runProtoComplete,
}

type direction int

const (
	dirEither direction = iota
	dirWorkerToManager
	dirManagerToWorker
)

// protoConst is one wire-message constant and what the module does with it.
type protoConst struct {
	name string
	obj  types.Object
	pos  token.Pos
	dir  direction

	produced     bool
	dispatchPkgs []string // import paths containing a dispatch arm
}

func runProtoComplete(pass *lint.Pass) error {
	// Run once, from the protocol package itself; everything else is
	// scanned via pass.All.
	if !lint.PathHasSegment(pass.Pkg.Path, "internal/protocol") {
		return nil
	}
	consts := collectProtoConsts(pass)
	if len(consts) == 0 {
		return nil
	}
	byObj := make(map[types.Object]*protoConst, len(consts))
	for _, c := range consts {
		byObj[c.obj] = c
	}
	for _, pkg := range pass.All {
		scanUsage(pkg, byObj)
	}
	for _, c := range consts {
		if !c.produced {
			pass.Report(c.pos,
				"protocol message %s is never produced: no Message literal or assignment sets Type to it anywhere in the module", c.name)
		}
		if want, label := requiredDispatchScope(c.dir); want != "" {
			ok := false
			for _, p := range c.dispatchPkgs {
				if lint.PathHasSegment(p, want) {
					ok = true
					break
				}
			}
			if !ok {
				pass.Report(c.pos,
					"protocol message %s (%s) has no dispatch arm in %s: the receiver will drop it on the floor", c.name, label, want)
			}
		} else if len(c.dispatchPkgs) == 0 {
			pass.Report(c.pos,
				"protocol message %s is never dispatched: no switch case or comparison consumes it anywhere in the module", c.name)
		}
	}
	return nil
}

// requiredDispatchScope maps a message direction to the import-path segment
// that must contain its dispatch arm.
func requiredDispatchScope(d direction) (segment, label string) {
	switch d {
	case dirWorkerToManager:
		return "internal/core", "worker→manager"
	case dirManagerToWorker:
		return "internal/worker", "manager→worker"
	}
	return "", ""
}

// collectProtoConsts gathers the Type* string constants and their wire
// direction from doc comments.
func collectProtoConsts(pass *lint.Pass) []*protoConst {
	var out []*protoConst
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				dir := parseDirection(vs.Doc.Text() + " " + vs.Comment.Text())
				for _, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "Type") {
						continue
					}
					obj := pass.Pkg.Info.Defs[name]
					if obj == nil {
						continue
					}
					if b, ok := obj.Type().Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
						continue
					}
					out = append(out, &protoConst{
						name: name.Name,
						obj:  obj,
						pos:  name.Pos(),
						dir:  dir,
					})
				}
			}
		}
	}
	return out
}

// parseDirection reads "worker→manager" / "manager→worker" (arrow or ASCII
// "->") from a constant's doc text. Mentions of both, or neither, mean the
// message flows either way.
func parseDirection(doc string) direction {
	doc = strings.ReplaceAll(doc, "->", "→")
	doc = strings.ReplaceAll(doc, " ", "")
	w2m := strings.Contains(doc, "worker→manager")
	m2w := strings.Contains(doc, "manager→worker")
	switch {
	case w2m && !m2w:
		return dirWorkerToManager
	case m2w && !w2m:
		return dirManagerToWorker
	}
	return dirEither
}

// scanUsage records, for one package, which protocol constants it produces
// and which it dispatches on.
func scanUsage(pkg *lint.Package, byObj map[types.Object]*protoConst) {
	resolve := func(e ast.Expr) *protoConst {
		var id *ast.Ident
		switch e := e.(type) {
		case *ast.Ident:
			id = e
		case *ast.SelectorExpr:
			id = e.Sel
		default:
			return nil
		}
		if obj := pkg.Info.Uses[id]; obj != nil {
			return byObj[obj]
		}
		return nil
	}
	for _, file := range pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CaseClause:
				for _, e := range n.List {
					if c := resolve(e); c != nil {
						c.dispatchPkgs = append(c.dispatchPkgs, pkg.Path)
					}
				}
			case *ast.BinaryExpr:
				if n.Op == token.EQL || n.Op == token.NEQ {
					for _, e := range []ast.Expr{n.X, n.Y} {
						if c := resolve(e); c != nil {
							c.dispatchPkgs = append(c.dispatchPkgs, pkg.Path)
						}
					}
				}
			case *ast.KeyValueExpr:
				if key, ok := n.Key.(*ast.Ident); ok && key.Name == "Type" {
					if c := resolve(n.Value); c != nil {
						c.produced = true
					}
				}
			case *ast.AssignStmt:
				for i, lhs := range n.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok || sel.Sel.Name != "Type" || i >= len(n.Rhs) {
						continue
					}
					if c := resolve(n.Rhs[i]); c != nil {
						c.produced = true
					}
				}
			}
			return true
		})
	}
}

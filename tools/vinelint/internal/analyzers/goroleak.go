package analyzers

import (
	"go/ast"
	"go/token"
	"strings"

	"taskvine/tools/vinelint/internal/lint"
)

// Goroleak requires every go statement to carry a provable lifecycle, so
// that Manager.Close, Worker.Close, and Pool.Stop can actually wait for
// everything they started. A fire-and-forget goroutine is invisible to
// shutdown: it keeps file descriptors and channel references alive after
// Close returns, which is exactly the class of leak the manager's
// goroutine-leak regression test exists to catch.
//
// A lifecycle is proven when the goroutine's body (the go'd function
// literal, or the declared body of the named function being launched)
// does any of:
//
//   - call Done() on a sync.WaitGroup — someone Waits for it
//   - receive from (or select on) a shutdown-named channel — done,
//     closed, quit, stop, shutdown, exit — including <-ctx.Done()
//   - close a shutdown-named channel — it IS the completion signal
//     someone else waits on
//
// Launching a function whose body the linter cannot see (e.g. go
// srv.Serve(ln) from another module) proves nothing: wrap it in a
// tracked literal. Genuinely process-lifetime goroutines in package main
// are exempt wholesale.
var Goroleak = &lint.Analyzer{
	Name: "goroleak",
	Doc: `require every go statement outside package main to have a provable
lifecycle: a WaitGroup Done, a shutdown-channel receive or close, or
context cancellation`,
	Run: runGoroleak,
}

// lifecycleNames are the substrings that mark a channel as a shutdown
// signal.
var lifecycleNames = []string{"done", "closed", "quit", "stop", "shutdown", "exit"}

func runGoroleak(pass *lint.Pass) error {
	if pass.Pkg.Types.Name() == "main" {
		return nil // process-lifetime goroutines die with the binary
	}
	cg := pass.Prog.CallGraph()
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, bodyPkg := goroutineBody(pass, cg, gs.Call)
			if body == nil {
				pass.Report(gs.Pos(),
					"goroutine launches a function whose body is not visible to the linter: wrap it in a literal tracked by a WaitGroup or shutdown channel")
				return true
			}
			if !provesLifecycle(bodyPkg, body) {
				pass.Report(gs.Pos(),
					"goroutine has no provable lifecycle: track it with a WaitGroup Done, a shutdown-channel receive/close, or context cancellation")
			}
			return true
		})
	}
	return nil
}

// goroutineBody resolves the body that will run on the new goroutine,
// along with the package whose type info covers it.
func goroutineBody(pass *lint.Pass, cg *lint.CallGraph, call *ast.CallExpr) (*ast.BlockStmt, *lint.Package) {
	if fl, ok := call.Fun.(*ast.FuncLit); ok {
		return fl.Body, pass.Pkg
	}
	fn := lint.CalleeFunc(pass.Pkg.Info, call)
	if fn == nil {
		return nil, nil
	}
	if node := cg.Node(fn); node != nil {
		return node.Decl.Body, node.Pkg
	}
	return nil, nil
}

// provesLifecycle scans a goroutine body for any of the accepted
// lifecycle constructs.
func provesLifecycle(pkg *lint.Package, body *ast.BlockStmt) bool {
	proved := false
	ast.Inspect(body, func(n ast.Node) bool {
		if proved {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.SelectorExpr:
				// wg.Done() — typically deferred right at the top.
				if fun.Sel.Name == "Done" {
					if t := pkg.Info.TypeOf(fun.X); t != nil && lint.TypeIs(t, "sync", "WaitGroup") {
						proved = true
					}
				}
			case *ast.Ident:
				// close(doneCh): this goroutine IS the completion signal.
				if fun.Name == "close" && len(n.Args) == 1 && isLifecycleName(exprName(n.Args[0])) {
					proved = true
				}
			}
		case *ast.UnaryExpr:
			// <-done, <-ctx.Done(), select { case <-m.loopDone: ... }.
			if n.Op == token.ARROW && isLifecycleName(exprName(n.X)) {
				proved = true
			}
		case *ast.RangeStmt:
			// for range over a shutdown-named channel.
			if n.X != nil && isLifecycleName(exprName(n.X)) {
				proved = true
			}
		}
		return !proved
	})
	return proved
}

// exprName extracts the rightmost identifier-ish name of an expression:
// done -> done, m.loopDone -> loopDone, ctx.Done() -> Done.
func exprName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.CallExpr:
		return exprName(e.Fun)
	case *ast.ParenExpr:
		return exprName(e.X)
	}
	return ""
}

// isLifecycleName reports whether a channel name reads as a shutdown
// signal.
func isLifecycleName(name string) bool {
	if name == "" {
		return false
	}
	lower := strings.ToLower(name)
	for _, want := range lifecycleNames {
		if strings.Contains(lower, want) {
			return true
		}
	}
	return false
}

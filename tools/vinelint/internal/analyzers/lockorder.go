package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"taskvine/tools/vinelint/internal/lint"
)

// LockOrder builds the module-wide lock-acquisition graph over the same
// mutexes the lockguard convention already names, and reports cycles: if
// one code path acquires A then B while another acquires B then A, the
// two paths can deadlock under the right interleaving even though each
// runs correctly alone. The multi-manager sharding work on the roadmap
// multiplies the locks in play, so the ordering discipline is enforced
// now, while the graph is small.
//
// Locks are identified structurally — "pkg.Type.field" for a mutex
// struct field, "pkg.var" for a package-level mutex — which deliberately
// merges all instances of a type: the analysis proves ordering between
// lock *classes*, the same granularity lockdep uses. Within one function
// the held set tracks Lock/Unlock pairs in source order (a deferred
// Unlock keeps the lock held to the end of the body); across calls, a
// callee's transitive acquisitions (excluding goroutine launches, which
// start with an empty held set) are ordered after everything held at the
// call site. Re-acquiring the same lock class while holding it inside a
// single function is reported as a self-deadlock; the same pattern
// through a call chain is not, because two instances of one type are
// indistinguishable statically.
//
// Findings are warnings: a cycle is a structural risk, not a proven
// deadlock. Break the cycle or, if two lock classes are provably never
// held by one goroutine, suppress with //vinelint:ignore lockorder and a
// reason.
var LockOrder = &lint.Analyzer{
	Name:        "lockorder",
	Doc:         `report cycles in the module-wide mutex acquisition-order graph`,
	Severity:    lint.SeverityWarning,
	WholeModule: true,
	Run:         runLockOrder,
}

// lockEdge is one observed "held A while acquiring B" ordering, with a
// witness site for the diagnostic.
type lockEdge struct {
	pos token.Pos
	fn  string
}

// lockFacts accumulates the per-function and module-wide acquisition
// facts.
type lockFacts struct {
	// direct[fn] = lock classes the function acquires in its own body.
	direct map[*lint.CGNode]map[string]bool
	// calls[fn] = call sites with a non-empty held set.
	calls map[*lint.CGNode][]heldCall
	// edges[a][b] = witness for "a held while b acquired".
	edges map[string]map[string]lockEdge
}

type heldCall struct {
	held   []string
	callee *lint.CGNode
	pos    token.Pos
	fn     string
}

func runLockOrder(pass *lint.Pass) error {
	// Whole-module: run once, from the first pass.
	if len(pass.All) == 0 || pass.Pkg != pass.All[0] {
		return nil
	}
	cg := pass.Prog.CallGraph()
	// Iterate declarations in source-position order: facts.edges keeps the
	// first witness per edge, so the walk order must be deterministic for
	// diagnostics to be stable across runs.
	ordered := make([]*lint.CGNode, 0, len(cg.Nodes))
	for _, node := range cg.Nodes {
		ordered = append(ordered, node)
	}
	sort.Slice(ordered, func(i, j int) bool {
		return ordered[i].Decl.Pos() < ordered[j].Decl.Pos()
	})
	facts := &lockFacts{
		direct: make(map[*lint.CGNode]map[string]bool),
		calls:  make(map[*lint.CGNode][]heldCall),
		edges:  make(map[string]map[string]lockEdge),
	}
	for _, node := range ordered {
		collectLockFacts(pass, node, facts)
	}

	// Transitive acquisitions per function over synchronous call edges: a
	// go'd callee runs on a fresh goroutine with nothing held, so its
	// acquisitions impose no order on ours.
	acq := make(map[*lint.CGNode]map[string]bool)
	for node, direct := range facts.direct {
		acq[node] = make(map[string]bool)
		for id := range direct {
			acq[node][id] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, node := range ordered {
			for _, e := range node.Out {
				if e.Go {
					continue
				}
				for id := range acq[e.Callee] {
					if acq[node] == nil {
						acq[node] = make(map[string]bool)
					}
					if !acq[node][id] {
						acq[node][id] = true
						changed = true
					}
				}
			}
		}
	}

	// Cross-function edges: everything held at a call site precedes
	// everything the callee may acquire. Self-edges are skipped here —
	// "holding T.mu while calling something that locks T.mu" is usually
	// a different instance of T, which lock classes cannot distinguish.
	for _, node := range ordered {
		for _, site := range facts.calls[node] {
			for id := range acq[site.callee] {
				for _, h := range site.held {
					if h == id {
						continue
					}
					addLockEdge(facts, h, id, site.pos, site.fn)
				}
			}
		}
	}

	reportLockCycles(pass, facts)
	return nil
}

// collectLockFacts walks one function body in source order, tracking the
// held set through Lock/Unlock pairs.
func collectLockFacts(pass *lint.Pass, node *lint.CGNode, facts *lockFacts) {
	info := node.Pkg.Info
	var held []string
	fname := node.Decl.Name.Name
	lint.WalkSync(node.Decl.Body, func(n ast.Node) bool {
		if _, isDefer := n.(*ast.DeferStmt); isDefer {
			// A deferred Unlock releases at return: the lock stays held
			// for the rest of the body, which is exactly what the held
			// set already says. Deferred acquisitions are vanishingly
			// rare and ignored.
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			// Still record module callees for cross-function ordering.
			recordHeldCall(pass, info, node, call, held, fname, facts)
			return true
		}
		op := sel.Sel.Name
		if op != "Lock" && op != "RLock" && op != "Unlock" && op != "RUnlock" {
			recordHeldCall(pass, info, node, call, held, fname, facts)
			return true
		}
		id := lockID(info, sel)
		if id == "" {
			return true
		}
		switch op {
		case "Lock", "RLock":
			reacquired := false
			for _, h := range held {
				if h == id {
					pass.Report(call.Pos(),
						"%s is re-acquired in %s while already held: self-deadlock on a non-reentrant mutex", id, fname)
					reacquired = true
					continue
				}
				addLockEdge(facts, h, id, call.Pos(), fname)
			}
			if facts.direct[node] == nil {
				facts.direct[node] = make(map[string]bool)
			}
			facts.direct[node][id] = true
			if !reacquired {
				held = append(held, id)
			}
		case "Unlock", "RUnlock":
			for i := len(held) - 1; i >= 0; i-- {
				if held[i] == id {
					held = append(held[:i], held[i+1:]...)
					break
				}
			}
		}
		return true
	})
}

// recordHeldCall remembers a call made while locks are held, for the
// cross-function ordering phase.
func recordHeldCall(pass *lint.Pass, info *types.Info, node *lint.CGNode, call *ast.CallExpr, held []string, fname string, facts *lockFacts) {
	if len(held) == 0 {
		return
	}
	fn := lint.CalleeFunc(info, call)
	if fn == nil {
		return
	}
	callee := pass.Prog.CallGraph().Node(fn)
	if callee == nil {
		return
	}
	facts.calls[node] = append(facts.calls[node], heldCall{
		held:   append([]string(nil), held...),
		callee: callee,
		pos:    call.Pos(),
		fn:     fname,
	})
}

// lockID names the lock class of a Lock/Unlock receiver expression, or ""
// when the mutex has no stable identity (locals, parameters).
func lockID(info *types.Info, sel *ast.SelectorExpr) string {
	t := info.TypeOf(sel.X)
	if t == nil {
		return ""
	}
	if !isMutexType(t) {
		// x.Lock() through an embedded sync.Mutex: the named type itself
		// is the lock class.
		if named := namedOf(t); named != nil && embedsMutex(named) {
			return typeID(named)
		}
		return ""
	}
	switch base := sel.X.(type) {
	case *ast.Ident:
		obj := info.Uses[base]
		if obj == nil || obj.Pkg() == nil {
			return ""
		}
		// Package-level mutex var.
		if obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name()
		}
		return ""
	case *ast.SelectorExpr:
		// recv.mu (or nested.field.mu): key by the immediate owner type.
		if named := namedOf(info.TypeOf(base.X)); named != nil {
			return typeID(named) + "." + base.Sel.Name
		}
	}
	return ""
}

// isMutexType reports whether t (or *t) is sync.Mutex or sync.RWMutex.
func isMutexType(t types.Type) bool {
	return lint.TypeIs(t, "sync", "Mutex") || lint.TypeIs(t, "sync", "RWMutex")
}

// namedOf strips one pointer and returns the named type, if any.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// typeID renders pkgpath.TypeName.
func typeID(named *types.Named) string {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

// embedsMutex reports whether a named struct type embeds sync.Mutex or
// sync.RWMutex.
func embedsMutex(named *types.Named) bool {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Embedded() && isMutexType(f.Type()) {
			return true
		}
	}
	return false
}

// addLockEdge records "a held while acquiring b" with the first witness
// winning (stable across runs because callers iterate deterministically
// ordered syntax).
func addLockEdge(facts *lockFacts, a, b string, pos token.Pos, fn string) {
	if facts.edges[a] == nil {
		facts.edges[a] = make(map[string]lockEdge)
	}
	if _, dup := facts.edges[a][b]; !dup {
		facts.edges[a][b] = lockEdge{pos: pos, fn: fn}
	}
}

// reportLockCycles finds cycles in the acquisition graph and reports each
// once, anchored at its lexicographically smallest node.
func reportLockCycles(pass *lint.Pass, facts *lockFacts) {
	nodes := make([]string, 0, len(facts.edges))
	for a := range facts.edges {
		nodes = append(nodes, a)
	}
	sort.Strings(nodes)

	seen := make(map[string]bool) // canonical cycle strings already reported
	var path []string
	onPath := make(map[string]bool)
	var dfs func(n string)
	dfs = func(n string) {
		path = append(path, n)
		onPath[n] = true
		succs := make([]string, 0, len(facts.edges[n]))
		for b := range facts.edges[n] {
			succs = append(succs, b)
		}
		sort.Strings(succs)
		for _, b := range succs {
			if onPath[b] {
				// Cycle: path[i..] + b closes back on b.
				start := 0
				for i, p := range path {
					if p == b {
						start = i
						break
					}
				}
				cycle := append([]string(nil), path[start:]...)
				canon := canonicalCycle(cycle)
				if !seen[canon] {
					seen[canon] = true
					first := cycle[0]
					next := cycle[(1)%len(cycle)]
					if len(cycle) == 1 {
						next = first
					}
					e := facts.edges[first][next]
					pass.Report(e.pos,
						"lock ordering cycle %s -> %s (edge taken in %s): acquire these locks in one global order or break the cycle",
						strings.Join(cycle, " -> "), cycle[0], e.fn)
				}
				continue
			}
			dfs(b)
		}
		onPath[n] = false
		path = path[:len(path)-1]
	}
	for _, n := range nodes {
		dfs(n)
	}
}

// canonicalCycle rotates a cycle so its smallest node comes first, giving
// a stable dedup key.
func canonicalCycle(cycle []string) string {
	min := 0
	for i, n := range cycle {
		if n < cycle[min] {
			min = i
		}
	}
	rotated := append(append([]string(nil), cycle[min:]...), cycle[:min]...)
	return fmt.Sprintf("%v", rotated)
}

// Package analyzers holds vinelint's domain-specific checks for the
// TaskVine codebase. Each analyzer enforces one invariant the generic Go
// toolchain cannot see; see the individual files for the rules.
package analyzers

import "taskvine/tools/vinelint/internal/lint"

// All returns every analyzer in the suite, in stable order.
func All() []*lint.Analyzer {
	return []*lint.Analyzer{
		SimDeterminism,
		LockGuard,
		ProtoComplete,
		CloseCheck,
		HotPath,
		EventBlock,
		Goroleak,
		LockOrder,
		MetricParity,
	}
}

package analyzers

import (
	"go/ast"
	"regexp"
	"strings"

	"taskvine/tools/vinelint/internal/lint"
)

// LockGuard enforces the "guarded by" comment convention: a struct field
// annotated `// guarded by mu` may only be touched by methods that acquire
// that mutex (recv.mu.Lock or recv.mu.RLock somewhere in the body), unless
// the method opts out of checking by naming convention.
//
// The check is flow-insensitive on purpose: it catches the common failure
// mode — a new method added months later that forgets the lock entirely —
// without trying to prove lock ordering. Helper methods that run with the
// lock already held declare so by carrying the "Locked" name suffix or a
// doc comment containing "must hold" / "caller holds".
var LockGuard = &lint.Analyzer{
	Name: "lockguard",
	Doc: `verify that struct fields annotated "guarded by <mu>" are only
accessed by methods that acquire <mu>`,
	Run: runLockGuard,
}

var guardedRe = regexp.MustCompile(`guarded by (\w+)`)

// guardedStruct records a struct's annotated fields: field name -> mutex
// field name.
type guardedStruct struct {
	fields    map[string]string
	allFields map[string]bool
	spec      *ast.TypeSpec
}

func runLockGuard(pass *lint.Pass) error {
	structs := collectGuardedStructs(pass)
	if len(structs) == 0 {
		return nil
	}
	// A named mutex must actually be a field of the struct, otherwise the
	// annotation is typo'd and silently checks nothing.
	for name, gs := range structs {
		for field, mu := range gs.fields {
			if !gs.allFields[mu] {
				pass.Report(gs.spec.Pos(),
					"field %s.%s is guarded by %q, but %s has no field named %q",
					name, field, mu, name, mu)
			}
		}
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil {
				continue
			}
			checkMethod(pass, structs, fd)
		}
	}
	return nil
}

// collectGuardedStructs scans the package's struct declarations for
// "guarded by" field annotations.
func collectGuardedStructs(pass *lint.Pass) map[string]*guardedStruct {
	out := make(map[string]*guardedStruct)
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			gs := &guardedStruct{
				fields:    make(map[string]string),
				allFields: make(map[string]bool),
				spec:      ts,
			}
			for _, f := range st.Fields.List {
				var mu string
				for _, cg := range []*ast.CommentGroup{f.Doc, f.Comment} {
					if cg == nil {
						continue
					}
					if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
						mu = m[1]
					}
				}
				for _, name := range f.Names {
					gs.allFields[name.Name] = true
					if mu != "" {
						gs.fields[name.Name] = mu
					}
				}
			}
			if len(gs.fields) > 0 {
				out[ts.Name.Name] = gs
			}
			return true
		})
	}
	return out
}

// checkMethod flags guarded-field accesses in a method whose body never
// acquires the guarding mutex.
func checkMethod(pass *lint.Pass, structs map[string]*guardedStruct, fd *ast.FuncDecl) {
	recvName, typeName := receiverInfo(fd)
	gs, ok := structs[typeName]
	if !ok || recvName == "" || recvName == "_" {
		return
	}
	if exemptMethod(fd) {
		return
	}
	recvObj := pass.Pkg.Info.Defs[recvIdent(fd)]
	if recvObj == nil {
		return
	}

	// First pass: which of the struct's mutexes does this body acquire?
	held := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Lock" && sel.Sel.Name != "RLock" {
			return true
		}
		inner, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := inner.X.(*ast.Ident)
		if !ok || pass.Pkg.Info.Uses[base] != recvObj {
			return true
		}
		held[inner.Sel.Name] = true
		return true
	})

	// Second pass: flag guarded accesses whose mutex was never acquired.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := sel.X.(*ast.Ident)
		if !ok || pass.Pkg.Info.Uses[base] != recvObj {
			return true
		}
		mu, guarded := gs.fields[sel.Sel.Name]
		if !guarded || held[mu] {
			return true
		}
		pass.Report(sel.Pos(),
			"%s.%s accesses %s.%s (guarded by %s) without acquiring %s.%s",
			typeName, fd.Name.Name, recvName, sel.Sel.Name, mu, recvName, mu)
		return true
	})
}

// exemptMethod reports whether a method declares that it runs with the
// lock already held.
func exemptMethod(fd *ast.FuncDecl) bool {
	if strings.HasSuffix(fd.Name.Name, "Locked") {
		return true
	}
	if fd.Doc != nil {
		doc := strings.ToLower(fd.Doc.Text())
		if strings.Contains(doc, "must hold") || strings.Contains(doc, "caller holds") {
			return true
		}
	}
	return false
}

// receiverInfo extracts the receiver variable name and the base type name
// from a method declaration.
func receiverInfo(fd *ast.FuncDecl) (recvName, typeName string) {
	if len(fd.Recv.List) != 1 {
		return "", ""
	}
	field := fd.Recv.List[0]
	if len(field.Names) == 1 {
		recvName = field.Names[0].Name
	}
	t := field.Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		typeName = id.Name
	}
	return recvName, typeName
}

// recvIdent returns the receiver's identifier, or nil for anonymous
// receivers.
func recvIdent(fd *ast.FuncDecl) *ast.Ident {
	if len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		return fd.Recv.List[0].Names[0]
	}
	return nil
}

package analyzers

import (
	"go/ast"
	"go/types"

	"taskvine/tools/vinelint/internal/lint"
)

// CloseCheck flags dropped errors from finalization calls — Close, Flush,
// Sync, SendPayload, RemoveAll — on the cache, transfer, and protocol
// paths. On these paths a swallowed error is not cosmetic: a failed Close
// after writing a cache object means the content-addressable store now
// holds a file whose declared size/content may be wrong, and a failed
// SendPayload means the peer never learns a transfer finished.
//
// Only bare expression statements (`f.Close()`) are flagged. A deferred
// call is a DeferStmt, and an explicit discard (`_ = f.Close()`) is an
// AssignStmt, so both are structurally exempt — the latter being the
// sanctioned way to say "this error is genuinely unactionable here".
var CloseCheck = &lint.Analyzer{
	Name: "closecheck",
	Doc: `flag dropped errors from Close/Flush/Sync/SendPayload/RemoveAll
calls on cache, transfer, and protocol paths`,
	Run: runCloseCheck,
}

// closeScopes are the import-path segments where finalization errors are
// load-bearing.
var closeScopes = []string{
	"internal/cache",
	"internal/worker",
	"internal/sandbox",
	"internal/tardir",
	"internal/protocol",
	"internal/core",
}

// finalizers are the method/function names whose error results must not be
// dropped in scope.
var finalizers = map[string]bool{
	"Close":       true,
	"Flush":       true,
	"Sync":        true,
	"SendPayload": true,
	"RemoveAll":   true,
}

func runCloseCheck(pass *lint.Pass) error {
	inScope := false
	for _, s := range closeScopes {
		if lint.PathHasSegment(pass.Pkg.Path, s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeName(call)
			if !finalizers[name] {
				return true
			}
			if !returnsError(pass, call) {
				return true
			}
			pass.Report(call.Pos(),
				"error from %s is dropped: handle it, or discard explicitly with `_ = ...` and a reason", name)
			return true
		})
	}
	return nil
}

// calleeName extracts the bare function or method name of a call.
func calleeName(call *ast.CallExpr) string {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name
	case *ast.SelectorExpr:
		return fn.Sel.Name
	}
	return ""
}

// returnsError reports whether the call's last result is of type error.
func returnsError(pass *lint.Pass, call *ast.CallExpr) bool {
	t := pass.Pkg.Info.TypeOf(call.Fun)
	sig, ok := t.(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	named, ok := last.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"taskvine/tools/vinelint/internal/lint"
)

// SimDeterminism enforces that simulator code is bit-for-bit reproducible:
// the simulated clock and seeded RNGs are the only sources of time and
// randomness, and map iteration order never leaks into results.
var SimDeterminism = &lint.Analyzer{
	Name: "simdeterminism",
	Doc: `forbid wall-clock time, global randomness, and order-dependent map
iteration in simulator packages (internal/sim, internal/experiments,
internal/workloads) and in the fault-injection engine (internal/chaos),
so that every simulation and chaos run is reproducible`,
	Run: runSimDeterminism,
}

// simScopes are the import-path segments whose packages must be
// deterministic. internal/chaos is included because injected fault
// schedules must replay identically for a fixed seed in both substrates.
var simScopes = []string{"internal/sim", "internal/experiments", "internal/workloads", "internal/chaos"}

// bannedTimeFuncs are the package-level time functions that read or depend
// on the wall clock. Conversions and constructors (time.Duration,
// time.Unix, time.Date) are fine.
var bannedTimeFuncs = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

func runSimDeterminism(pass *lint.Pass) error {
	inScope := false
	for _, s := range simScopes {
		if lint.PathHasSegment(pass.Pkg.Path, s) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkBannedCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n, file)
			}
			return true
		})
	}
	return nil
}

// checkBannedCall flags calls to wall-clock time functions and to the
// global (process-seeded) math/rand generators.
func checkBannedCall(pass *lint.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return
	}
	switch pn.Imported().Path() {
	case "time":
		if bannedTimeFuncs[sel.Sel.Name] {
			pass.Report(call.Pos(),
				"time.%s in simulator code: use the simulated clock (engine time) instead",
				sel.Sel.Name)
		}
	case "math/rand", "math/rand/v2":
		// Any package-level call uses the shared global source, which is
		// not controlled by the simulation seed.
		pass.Report(call.Pos(),
			"global rand.%s in simulator code: use a seeded *rand.Rand owned by the simulation",
			sel.Sel.Name)
	}
}

// checkMapRange flags `for ... := range m` over a map when the loop body
// lets iteration order escape: either by appending to a variable declared
// outside the loop that is never subsequently sorted in the enclosing
// function, or by calling side-effecting functions from the body.
func checkMapRange(pass *lint.Pass, rng *ast.RangeStmt, file *ast.File) {
	t := pass.Pkg.Info.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	fn := enclosingFunc(file, rng)

	var appended []string // textual form of append targets
	sideEffect := false
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "append" {
				if _, isB := pass.Pkg.Info.Uses[id].(*types.Builtin); isB && len(n.Args) > 0 {
					appended = append(appended, types.ExprString(n.Args[0]))
				}
			}
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok && !isPureish(pass, call) {
				sideEffect = true
			}
		}
		return true
	})

	if sideEffect {
		pass.Report(rng.Pos(),
			"map iteration with side-effecting calls in the body: iteration order is random; collect keys and sort first")
		return
	}
	for _, target := range appended {
		if fn != nil && sortedLater(pass, fn, target, rng) {
			continue
		}
		pass.Report(rng.Pos(),
			"map iteration appends to %s without a later sort: result order depends on map iteration order", target)
	}
}

// isPureish reports whether a call in a map-range body is harmless from a
// determinism standpoint: builtins (delete, len, ...), and method calls on
// the loop variables themselves tend to be accumulation patterns we accept
// only for builtins — everything else counts as a side effect.
func isPureish(pass *lint.Pass, call *ast.CallExpr) bool {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isB := pass.Pkg.Info.Uses[id].(*types.Builtin); isB {
			return true
		}
	}
	return false
}

// enclosingFunc finds the innermost function declaration or literal
// containing pos.
func enclosingFunc(file *ast.File, pos ast.Node) ast.Node {
	var best ast.Node
	p := pos.Pos()
	ast.Inspect(file, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if n.Pos() <= p && p < n.End() {
				best = n
			}
		}
		return true
	})
	return best
}

// sortedLater reports whether, after pos, the enclosing function passes
// target (by textual match) to a sort.* or slices.Sort* call — the
// canonical way to launder map-iteration order back into determinism.
func sortedLater(pass *lint.Pass, fn ast.Node, target string, after ast.Node) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < after.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
		if !ok {
			return true
		}
		path := pn.Imported().Path()
		if path != "sort" && path != "slices" {
			return true
		}
		if !strings.HasPrefix(sel.Sel.Name, "Sort") && !strings.HasPrefix(sel.Sel.Name, "Slice") && !strings.HasPrefix(sel.Sel.Name, "Strings") && !strings.HasPrefix(sel.Sel.Name, "Ints") {
			return true
		}
		for _, arg := range call.Args {
			if argMatchesTarget(types.ExprString(arg), target) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// argMatchesTarget compares a sort argument against an append target,
// tolerating an address-of or slicing wrapper.
func argMatchesTarget(arg, target string) bool {
	arg = strings.TrimPrefix(arg, "&")
	if arg == target {
		return true
	}
	return strings.HasPrefix(arg, fmt.Sprintf("%s[", target))
}

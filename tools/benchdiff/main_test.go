package main

import (
	"os"
	"path/filepath"
	"testing"
)

// writeStream writes a test2json fixture and returns its path.
func writeStream(t *testing.T, body string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoadCompleteLine(t *testing.T) {
	path := writeStream(t, `{"Action":"output","Package":"p","Output":"BenchmarkFoo-8 \t     855\t   1472341 ns/op\t       679.2 tasks/s\n"}
`)
	s, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := s["BenchmarkFoo"].mean("tasks/s")
	if !ok || v != 679.2 {
		t.Fatalf("tasks/s = %v, %v; want 679.2, true", v, ok)
	}
}

// TestLoadSplitLine pins the stitching of a result line that test2json
// flushed as two events: the name alone, then the numbers. Before the
// per-package partial buffer, such results were silently dropped and the
// benchmark reported as "gone".
func TestLoadSplitLine(t *testing.T) {
	path := writeStream(t, `{"Action":"output","Package":"p","Output":"BenchmarkFoo \t"}
{"Action":"output","Package":"q","Output":"BenchmarkBar \t"}
{"Action":"output","Package":"p","Output":"     680\t   1620892 ns/op\t       617.0 tasks/s\n"}
{"Action":"output","Package":"q","Output":"     100\t    500 ns/op\n"}
`)
	s, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s["BenchmarkFoo"].mean("ns/op"); !ok || v != 1620892 {
		t.Fatalf("Foo ns/op = %v, %v; want 1620892, true", v, ok)
	}
	if v, ok := s["BenchmarkBar"].mean("ns/op"); !ok || v != 500 {
		t.Fatalf("Bar ns/op = %v, %v; want 500, true", v, ok)
	}
}

// TestLoadInterleavedNoise checks that non-benchmark fragments between a
// split name and its numbers do not corrupt the stitch, and that repeated
// counts average.
func TestLoadInterleavedNoise(t *testing.T) {
	path := writeStream(t, `{"Action":"output","Package":"p","Output":"=== RUN   BenchmarkFoo\n"}
{"Action":"output","Package":"p","Output":"BenchmarkFoo \t"}
{"Action":"output","Package":"p","Output":"     10\t   100 ns/op\n"}
{"Action":"output","Package":"p","Output":"BenchmarkFoo \t     10\t   300 ns/op\n"}
{"Action":"run","Package":"p"}
not json at all
`)
	s, err := load(path)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s["BenchmarkFoo"].mean("ns/op"); !ok || v != 200 {
		t.Fatalf("Foo ns/op mean = %v, %v; want 200, true", v, ok)
	}
}

// Command benchdiff compares two benchmark recordings in `go test -json`
// form (as written by `make bench` into BENCH_core.json) and prints a
// benchstat-style table of old vs new per metric unit. It is stdlib-only
// and intentionally simple: means over the recorded -count repetitions,
// with the delta as a percentage. The output is informational — CI uploads
// it as a non-gating artifact so perf drift is visible without a noisy
// runner ever failing a build.
//
// Usage: benchdiff OLD.json NEW.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// testEvent is the subset of the test2json stream benchdiff reads.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// sample is one benchmark's recorded means, keyed by unit (ns/op, B/op,
// allocs/op, tasks/s, ...).
type sample struct {
	sums   map[string]float64
	counts map[string]int
}

func (s *sample) add(unit string, v float64) {
	if s.sums == nil {
		s.sums = make(map[string]float64)
		s.counts = make(map[string]int)
	}
	s.sums[unit] += v
	s.counts[unit]++
}

func (s *sample) mean(unit string) (float64, bool) {
	if s == nil || s.counts[unit] == 0 {
		return 0, false
	}
	return s.sums[unit] / float64(s.counts[unit]), true
}

// load parses one test2json file into benchmark name -> sample. The
// GOMAXPROCS suffix (-8) is stripped so recordings from different machines
// still line up.
//
// test2json splits a result line across output events whenever the
// benchmark pauses between printing its name and its numbers (it flushes
// partial lines after a timeout), so a result can arrive as
// "BenchmarkX \t" in one event and "  680\t 1620892 ns/op...\n" in the
// next. Events from concurrently-tested packages interleave, so the
// partial line is buffered per package until its newline arrives.
func load(path string) (map[string]*sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]*sample)
	partial := make(map[string]string) // package -> incomplete output line
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev testEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			continue // tolerate non-JSON noise in the stream
		}
		if ev.Action != "output" {
			continue
		}
		text := partial[ev.Package] + ev.Output
		for {
			i := strings.IndexByte(text, '\n')
			if i < 0 {
				break
			}
			addLine(out, text[:i])
			text = text[i+1:]
		}
		if strings.HasPrefix(text, "Benchmark") {
			partial[ev.Package] = text
		} else {
			delete(partial, ev.Package) // non-benchmark fragment: drop it
		}
	}
	return out, sc.Err()
}

// addLine parses one complete benchmark result line into out.
func addLine(out map[string]*sample, line string) {
	if !strings.HasPrefix(line, "Benchmark") {
		return
	}
	fields := strings.Fields(line)
	// Name N v1 unit1 v2 unit2 ... — anything shorter is a header line.
	if len(fields) < 4 {
		return
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	s := out[name]
	if s == nil {
		s = &sample{}
		out[name] = s
	}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			break
		}
		s.add(fields[i+1], v)
	}
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff OLD.json NEW.json")
		os.Exit(2)
	}
	oldS, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	newS, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}

	names := make([]string, 0, len(oldS)+len(newS))
	seen := make(map[string]bool)
	for n := range oldS {
		names = append(names, n)
		seen[n] = true
	}
	for n := range newS {
		if !seen[n] {
			names = append(names, n)
		}
	}
	sort.Strings(names)

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "%-60s %-10s %14s %14s %9s\n", "benchmark", "unit", "old", "new", "delta")
	for _, name := range names {
		units := unitSet(oldS[name], newS[name])
		for _, unit := range units {
			ov, oOK := oldS[name].mean(unit)
			nv, nOK := newS[name].mean(unit)
			switch {
			case oOK && nOK:
				delta := "~"
				if ov != 0 {
					delta = fmt.Sprintf("%+.1f%%", (nv-ov)/ov*100)
				}
				fmt.Fprintf(w, "%-60s %-10s %14.2f %14.2f %9s\n", name, unit, ov, nv, delta)
			case nOK:
				fmt.Fprintf(w, "%-60s %-10s %14s %14.2f %9s\n", name, unit, "-", nv, "new")
			default:
				fmt.Fprintf(w, "%-60s %-10s %14.2f %14s %9s\n", name, unit, ov, "-", "gone")
			}
		}
	}
}

// unitSet returns the union of units across both samples, in stable order.
func unitSet(a, b *sample) []string {
	set := make(map[string]bool)
	for _, s := range []*sample{a, b} {
		if s == nil {
			continue
		}
		for u := range s.sums {
			set[u] = true
		}
	}
	units := make([]string, 0, len(set))
	for u := range set {
		units = append(units, u)
	}
	// ns/op first, then alphabetical: the headline number leads.
	sort.Slice(units, func(i, j int) bool {
		if (units[i] == "ns/op") != (units[j] == "ns/op") {
			return units[i] == "ns/op"
		}
		return units[i] < units[j]
	})
	return units
}

package main

import (
	"strings"
	"testing"
)

const sampleOutput = `ok  	taskvine	1.007s	coverage: 78.1% of statements
	taskvine/cmd/vine-sim		coverage: 0.0% of statements
ok  	taskvine/internal/core	14.653s	coverage: 77.2% of statements
ok  	taskvine/internal/sim	0.015s	coverage: 86.7% of statements
?   	taskvine/examples/blast	[no test files]
ok  	taskvine/internal/empty	0.002s	coverage: [no statements]
FAIL	taskvine/internal/broken	0.1s	coverage: 12.5% of statements
--- FAIL: TestSomething (0.00s)
some random log line
`

func TestParseCover(t *testing.T) {
	got, err := parseCover(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"taskvine":                 78.1,
		"taskvine/cmd/vine-sim":    0.0,
		"taskvine/internal/core":   77.2,
		"taskvine/internal/sim":    86.7,
		"taskvine/internal/broken": 12.5,
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d packages, want %d: %v", len(got), len(want), got)
	}
	for pkg, pct := range want {
		if got[pkg] != pct {
			t.Errorf("%s = %.1f, want %.1f", pkg, got[pkg], pct)
		}
	}
}

func TestCheckFloorsPass(t *testing.T) {
	floors := map[string]float64{"a": 70, "b": 80}
	measured := map[string]float64{"a": 75.5, "b": 80.0, "c": 1}
	if bad := checkFloors(floors, measured); len(bad) != 0 {
		t.Fatalf("unexpected violations: %v", bad)
	}
}

func TestCheckFloorsViolations(t *testing.T) {
	floors := map[string]float64{"a": 70, "gone": 50}
	measured := map[string]float64{"a": 69.9}
	bad := checkFloors(floors, measured)
	if len(bad) != 2 {
		t.Fatalf("want 2 violations, got %v", bad)
	}
	if !strings.Contains(bad[0], "a: coverage 69.9% below floor 70.0%") {
		t.Errorf("bad[0] = %q", bad[0])
	}
	if !strings.Contains(bad[1], "gone: no coverage reported") {
		t.Errorf("bad[1] = %q", bad[1])
	}
}

// Command covercheck turns `go test -cover` output into a coverage report
// and gates it against the ratchet file COVERAGE.json.
//
// Usage:
//
//	go test -cover ./... | go run ./tools/covercheck -ratchet COVERAGE.json [-report FILE] [-update]
//
// The ratchet file has two sections: "floors" maps a package to the
// minimum statement coverage it must keep (gating — the build fails when a
// floored package measures below its floor or stops reporting), and
// "measured" records the last accepted per-package numbers (non-gating —
// a trend report for reviewers, refreshed with -update). Only stdlib is
// used, so the tool runs anywhere the repo builds.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Ratchet is the COVERAGE.json schema.
type Ratchet struct {
	// Floors maps package import paths to gating minimum coverage (percent).
	Floors map[string]float64 `json:"floors"`
	// Measured records the last accepted coverage per package (percent);
	// informational, refreshed by -update.
	Measured map[string]float64 `json:"measured"`
}

// parseCover extracts per-package statement coverage from `go test -cover`
// output. Lines without a coverage figure (no-test packages, vet output,
// "[no statements]") are skipped.
func parseCover(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		i := strings.Index(line, "coverage:")
		if i < 0 {
			continue
		}
		// Package path: first field, or second when the line starts with a
		// test-result verb ("ok", "FAIL", "---").
		fields := strings.Fields(line[:i])
		if len(fields) == 0 {
			continue
		}
		pkg := fields[0]
		if pkg == "ok" || pkg == "FAIL" || pkg == "---" {
			if len(fields) < 2 {
				continue
			}
			pkg = fields[1]
		}
		rest := strings.Fields(line[i+len("coverage:"):])
		if len(rest) == 0 || !strings.HasSuffix(rest[0], "%") {
			continue // e.g. "coverage: [no statements]"
		}
		pct, err := strconv.ParseFloat(strings.TrimSuffix(rest[0], "%"), 64)
		if err != nil {
			continue
		}
		out[pkg] = pct
	}
	return out, sc.Err()
}

// checkFloors compares measured coverage against the gating floors and
// returns one message per violation, sorted by package.
func checkFloors(floors, measured map[string]float64) []string {
	var bad []string
	pkgs := make([]string, 0, len(floors))
	for pkg := range floors {
		pkgs = append(pkgs, pkg)
	}
	sort.Strings(pkgs)
	for _, pkg := range pkgs {
		floor := floors[pkg]
		got, ok := measured[pkg]
		switch {
		case !ok:
			bad = append(bad, fmt.Sprintf("%s: no coverage reported (floor %.1f%%)", pkg, floor))
		case got < floor:
			bad = append(bad, fmt.Sprintf("%s: coverage %.1f%% below floor %.1f%%", pkg, got, floor))
		}
	}
	return bad
}

func writeJSON(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func main() {
	ratchetPath := flag.String("ratchet", "COVERAGE.json", "ratchet file with gating floors")
	reportPath := flag.String("report", "", "write the measured per-package report to this file")
	update := flag.Bool("update", false, "rewrite the ratchet file's measured section")
	flag.Parse()

	raw, err := os.ReadFile(*ratchetPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "covercheck: %v\n", err)
		os.Exit(2)
	}
	var ratchet Ratchet
	if err := json.Unmarshal(raw, &ratchet); err != nil {
		fmt.Fprintf(os.Stderr, "covercheck: %s: %v\n", *ratchetPath, err)
		os.Exit(2)
	}

	measured, err := parseCover(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "covercheck: reading input: %v\n", err)
		os.Exit(2)
	}
	if len(measured) == 0 {
		fmt.Fprintln(os.Stderr, "covercheck: no coverage lines on stdin (pipe `go test -cover` output)")
		os.Exit(2)
	}

	if *reportPath != "" {
		if err := writeJSON(*reportPath, measured); err != nil {
			fmt.Fprintf(os.Stderr, "covercheck: %v\n", err)
			os.Exit(2)
		}
	}
	if *update {
		ratchet.Measured = measured
		if err := writeJSON(*ratchetPath, ratchet); err != nil {
			fmt.Fprintf(os.Stderr, "covercheck: %v\n", err)
			os.Exit(2)
		}
	}

	if bad := checkFloors(ratchet.Floors, measured); len(bad) > 0 {
		for _, msg := range bad {
			fmt.Fprintf(os.Stderr, "covercheck: %s\n", msg)
		}
		os.Exit(1)
	}
	for _, pkg := range sortedKeys(ratchet.Floors) {
		fmt.Printf("covercheck: %s %.1f%% (floor %.1f%%)\n", pkg, measured[pkg], ratchet.Floors[pkg])
	}
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

package taskvine

import (
	"context"
	"log"

	"taskvine/internal/metrics"
	"taskvine/internal/resources"
	"taskvine/internal/serverless"
	"taskvine/internal/worker"
)

// Function is an invocable serverless unit: serialized arguments in,
// serialized result out. Implementations must tolerate concurrent calls.
type Function = serverless.Function

// Library is a named collection of functions plus a one-time Boot step
// standing in for the expensive initialization the serverless model
// amortizes (§3.4).
type Library = serverless.Library

// WorkerConfig parameterizes a worker process.
type WorkerConfig struct {
	// ManagerAddr is the manager's host:port.
	ManagerAddr string
	// WorkDir holds the worker's cache and sandboxes.
	WorkDir string
	// Capacity is the node's resource vector (cores, memory, disk, GPUs).
	Capacity Resources
	// CacheCapacity bounds cache disk in bytes (default Capacity.Disk).
	CacheCapacity int64
	// ID names the worker; generated when empty.
	ID string
	// Libraries are the serverless libraries this worker can instantiate.
	Libraries []*Library
	// Logger receives operational logs; nil silences them.
	Logger *log.Logger
	// Metrics is the instrument registry; nil allocates a private one. Pass
	// the manager's Metrics() so an in-process worker's cache and sandbox
	// counters appear on the manager's /metrics surface.
	Metrics *metrics.Registry
}

// Worker manages the resources of one node on the manager's behalf: local
// storage, task sandboxes, peer transfers, and library instances (§2.2).
type Worker struct {
	w *worker.Worker
}

// NewWorker prepares a worker. Its persistent cache directory is created
// (and prior worker-lifetime objects adopted) immediately.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	reg := serverless.NewRegistry()
	for _, lib := range cfg.Libraries {
		if err := reg.Register(lib); err != nil {
			return nil, err
		}
	}
	w, err := worker.New(worker.Config{
		ManagerAddr:   cfg.ManagerAddr,
		WorkDir:       cfg.WorkDir,
		Capacity:      resources.R(cfg.Capacity),
		CacheCapacity: cfg.CacheCapacity,
		ID:            cfg.ID,
		Libraries:     reg,
		Logger:        cfg.Logger,
		Metrics:       cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	return &Worker{w: w}, nil
}

// ID returns the worker's identity.
func (w *Worker) ID() string { return w.w.ID() }

// Run connects to the manager and serves until the context is cancelled or
// the manager releases the worker.
func (w *Worker) Run(ctx context.Context) error { return w.w.Run(ctx) }

package taskvine_test

// Runnable documentation examples: each starts a real manager and worker
// in-process and executes real tasks.

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"taskvine"
)

// startExampleCluster is shared plumbing for the examples below.
func startExampleCluster(libs []*taskvine.Library) (*taskvine.Manager, func()) {
	m, err := taskvine.NewManager(taskvine.ManagerConfig{})
	if err != nil {
		panic(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	tmp, err := os.MkdirTemp("", "vine-example-*")
	if err != nil {
		panic(err)
	}
	done := make(chan struct{})
	w, err := taskvine.NewWorker(taskvine.WorkerConfig{
		ManagerAddr: m.Addr(),
		WorkDir:     filepath.Join(tmp, "w0"),
		Capacity:    taskvine.Resources{Cores: 4, Memory: taskvine.GB, Disk: taskvine.GB},
		ID:          "example-worker",
		Libraries:   libs,
	})
	if err != nil {
		panic(err)
	}
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	return m, func() {
		m.Close()
		cancel()
		<-done
		os.RemoveAll(tmp)
	}
}

// Example demonstrates the basic declare-submit-wait cycle of Figure 3.
func Example() {
	m, stop := startExampleCluster(nil)
	defer stop()

	words := m.DeclareBuffer([]byte("managing in-cluster storage"), taskvine.CacheWorkflow)
	for i := 0; i < 3; i++ {
		t := taskvine.NewTask("wc -w < input")
		t.AddInput(words, "input")
		if _, err := m.Submit(t); err != nil {
			panic(err)
		}
	}
	var outputs []string
	for i := 0; i < 3; i++ {
		r, err := m.Wait(context.Background())
		if err != nil {
			panic(err)
		}
		outputs = append(outputs, strings.TrimSpace(string(r.Output)))
	}
	sort.Strings(outputs)
	fmt.Println(outputs)
	// Output: [3 3 3]
}

// ExampleGraph wires tasks together through in-cluster temp files.
func ExampleGraph() {
	m, stop := startExampleCluster(nil)
	defer stop()

	g := taskvine.NewGraph(m)
	hello := g.Command("printf hello > out", taskvine.WithOutput("out"))
	upper := g.Command("tr a-z A-Z < in > out",
		taskvine.WithInput(hello.Output("out"), "in"),
		taskvine.WithOutput("out"))
	if err := g.Run(context.Background()); err != nil {
		panic(err)
	}
	data, err := g.Fetch(context.Background(), upper.Output("out"))
	if err != nil {
		panic(err)
	}
	fmt.Println(string(data))
	// Output: HELLO
}

// ExampleManager_InstallLibrary shows the serverless model of §3.4: the
// library boots once per worker and serves FunctionCall tasks.
func ExampleManager_InstallLibrary() {
	lib := &taskvine.Library{
		Name: "strings",
		Functions: map[string]taskvine.Function{
			"reverse": func(args []byte) ([]byte, error) {
				b := []byte(string(args))
				for i, j := 0, len(b)-1; i < j; i, j = i+1, j-1 {
					b[i], b[j] = b[j], b[i]
				}
				return b, nil
			},
		},
	}
	m, stop := startExampleCluster([]*taskvine.Library{lib})
	defer stop()

	m.InstallLibrary("strings", taskvine.Resources{Cores: 1})
	fc := taskvine.NewFunctionCall("strings", "reverse", []byte("taskvine"))
	if _, err := m.Submit(fc); err != nil {
		panic(err)
	}
	r, err := m.Wait(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Println(string(r.Output))
	// Output: enivksat
}
